//! The declarative scenario specification.
//!
//! A scenario file is a TOML document with three parts:
//!
//! * `[scenario]` — name, description, optional `output` stem for
//!   CSV/JSON artifacts;
//! * `[sweep]` — the grid axes: `topology`, `collective`, `size`,
//!   `chunks`, `algo`, `seed`, `attempts`, and `link` (each a list; a
//!   bare scalar is accepted as a one-element list);
//! * `[run]` — execution settings: `simulate`, `threads` (0 = all
//!   cores), `cache` (a directory string, or `false` to disable);
//! * optional `[[topologies]]` — builder-described heterogeneous
//!   networks, referenced from `sweep.topology` as `custom:<name>`.
//!
//! ```toml
//! [scenario]
//! name = "size_sweep"
//!
//! [sweep]
//! topology = ["ring:128"]
//! collective = ["all-reduce"]
//! size = ["1KB", "1MB", "1GB"]
//! algo = ["ring", "direct"]
//! link = [{ alpha_us = 0.03, bandwidth_gbps = 150.0 }]
//!
//! [run]
//! simulate = true
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use tacos_baselines::{BaselineKind, TacclConfig};
use tacos_collective::CollectivePattern;
use tacos_topology::{
    Bandwidth, ByteSize, LinkSpec, NpuId, RingOrientation, Time, Topology, TopologyBuilder,
};

use crate::error::ScenarioError;
use crate::toml::{self, Table, Value};

/// One value of the `link` sweep axis: an α–β spec in display units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkAxis {
    /// Link latency α in microseconds.
    pub alpha_us: f64,
    /// Link bandwidth 1/β in GB/s.
    pub bandwidth_gbps: f64,
}

impl LinkAxis {
    /// The paper's default link: α = 0.5 µs, 50 GB/s.
    pub fn default_paper() -> Self {
        LinkAxis {
            alpha_us: 0.5,
            bandwidth_gbps: 50.0,
        }
    }

    /// Converts to a [`LinkSpec`].
    pub fn to_spec(self) -> LinkSpec {
        LinkSpec::new(
            Time::from_micros(self.alpha_us),
            Bandwidth::gbps(self.bandwidth_gbps),
        )
    }
}

impl fmt::Display for LinkAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}us-{}GBps", self.alpha_us, self.bandwidth_gbps)
    }
}

/// One directed (or bidirectional) link of a builder-described topology.
#[derive(Debug, Clone, Copy)]
pub struct CustomLink {
    /// Source NPU index.
    pub src: u32,
    /// Destination NPU index.
    pub dst: u32,
    /// Link cost parameters.
    pub link: LinkAxis,
    /// Whether to add the reverse direction too.
    pub bidi: bool,
}

/// A heterogeneous network described link-by-link in the scenario file.
#[derive(Debug, Clone)]
pub struct CustomTopology {
    /// Name referenced from `sweep.topology` as `custom:<name>`.
    pub name: String,
    /// Number of NPUs.
    pub npus: usize,
    /// The links.
    pub links: Vec<CustomLink>,
}

impl CustomTopology {
    /// Builds the [`Topology`].
    ///
    /// # Errors
    /// Returns a message if an endpoint is out of range or the built
    /// network is rejected (e.g. not strongly connected).
    pub fn build(&self) -> Result<Topology, String> {
        let mut b = TopologyBuilder::new(format!("custom:{}", self.name));
        b.npus(self.npus);
        for l in &self.links {
            if l.src as usize >= self.npus || l.dst as usize >= self.npus {
                return Err(format!(
                    "link {} -> {} out of range for {} NPUs",
                    l.src, l.dst, self.npus
                ));
            }
            if l.bidi {
                b.bidi_link(NpuId::new(l.src), NpuId::new(l.dst), l.link.to_spec());
            } else {
                b.link(NpuId::new(l.src), NpuId::new(l.dst), l.link.to_spec());
            }
        }
        b.build().map_err(|e| e.to_string())
    }
}

/// The sweep axes. Grid expansion is their cartesian product.
#[derive(Debug, Clone)]
pub struct SweepAxes {
    /// Topology spec strings (`mesh:3x3`, `custom:<name>`, ...).
    pub topology: Vec<String>,
    /// Collective pattern names (`all-reduce`, `all-gather`, ...).
    pub collective: Vec<String>,
    /// Collective sizes (`64MB`, `1GB`, ...).
    pub size: Vec<String>,
    /// Chunking factors per NPU.
    pub chunks: Vec<usize>,
    /// Algorithm names (`tacos` or any baseline).
    pub algo: Vec<String>,
    /// Base RNG seeds.
    pub seed: Vec<u64>,
    /// Best-of-N attempt counts.
    pub attempts: Vec<usize>,
    /// Link specs applied to homogeneous topology constructors.
    pub link: Vec<LinkAxis>,
}

/// Execution settings for the runner.
#[derive(Debug, Clone)]
pub struct RunSettings {
    /// Also run the congestion-aware simulator on each point (always done
    /// for algorithms without a planned time).
    pub simulate: bool,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Cache directory for synthesized schedules; `None` disables caching.
    pub cache: Option<String>,
    /// Suppress per-point progress on stderr.
    pub quiet: bool,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            simulate: false,
            threads: 0,
            cache: Some(".tacos-cache".into()),
            quiet: false,
        }
    }
}

/// A fully parsed, validated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used in output rows and progress lines).
    pub name: String,
    /// Human description.
    pub description: String,
    /// Output stem; the runner writes `<stem>.csv` and `<stem>.json`.
    pub output: Option<String>,
    /// The sweep axes.
    pub sweep: SweepAxes,
    /// Execution settings.
    pub run: RunSettings,
    /// Builder-described topologies, by name.
    pub custom_topologies: BTreeMap<String, CustomTopology>,
}

impl ScenarioSpec {
    /// Loads and validates a scenario file.
    ///
    /// # Errors
    /// IO, parse (with line numbers), or validation errors.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::io(path.display().to_string(), e))?;
        Self::from_toml_str(&text)
    }

    /// Parses and validates a scenario from TOML text.
    ///
    /// # Errors
    /// Parse (with line numbers) or validation errors.
    pub fn from_toml_str(text: &str) -> Result<Self, ScenarioError> {
        let doc = toml::parse(text)?;
        Self::from_table(&doc)
    }

    fn from_table(doc: &Table) -> Result<Self, ScenarioError> {
        reject_unknown_keys(
            doc,
            "top level",
            &["scenario", "sweep", "run", "topologies"],
        )?;
        let scenario = expect_table(doc, "scenario")?;
        reject_unknown_keys(scenario, "[scenario]", &["name", "description", "output"])?;
        let name = expect_str(scenario, "scenario", "name")?.to_string();
        let description = opt_str(scenario, "scenario", "description")?
            .unwrap_or_default()
            .to_string();
        let output = opt_str(scenario, "scenario", "output")?.map(str::to_string);

        let mut custom_topologies = BTreeMap::new();
        if let Some(v) = doc.get("topologies") {
            let items = v.as_array().ok_or_else(|| {
                ScenarioError::spec("'topologies' must be an array of tables ([[topologies]])")
            })?;
            for item in items {
                let t = item
                    .as_table()
                    .ok_or_else(|| ScenarioError::spec("each [[topologies]] must be a table"))?;
                let custom = parse_custom_topology(t)?;
                let label = custom.name.clone();
                if custom_topologies.insert(label.clone(), custom).is_some() {
                    return Err(ScenarioError::spec(format!(
                        "duplicate topology name '{label}'"
                    )));
                }
            }
        }

        let sweep_table = expect_table(doc, "sweep")?;
        let sweep = parse_sweep(sweep_table, &custom_topologies)?;

        let run = match doc.get("run") {
            None => RunSettings::default(),
            Some(v) => parse_run(v.as_table().ok_or_else(|| {
                ScenarioError::spec(format!("'run' must be a table, found {}", v.type_name()))
            })?)?,
        };

        Ok(ScenarioSpec {
            name,
            description,
            output,
            sweep,
            run,
            custom_topologies,
        })
    }

    /// Builds the topology named by a `sweep.topology` entry under a link
    /// spec from the link axis.
    ///
    /// # Errors
    /// Returns a message for unknown families, bad dimensions, or invalid
    /// custom networks.
    pub fn build_topology(&self, spec: &str, link: LinkSpec) -> Result<Topology, String> {
        if let Some(name) = spec.strip_prefix("custom:") {
            return self
                .custom_topologies
                .get(name)
                .ok_or_else(|| format!("unknown custom topology '{name}'"))?
                .build();
        }
        parse_topology(spec, link)
    }
}

fn parse_custom_topology(t: &Table) -> Result<CustomTopology, ScenarioError> {
    reject_unknown_keys(t, "[[topologies]]", &["name", "npus", "links"])?;
    let name = expect_str(t, "topologies", "name")?.to_string();
    let npus = expect_int(t, "topologies", "npus")?;
    if npus < 2 {
        return Err(ScenarioError::spec(format!(
            "topology '{name}': npus must be >= 2"
        )));
    }
    let links_value = t
        .get("links")
        .ok_or_else(|| ScenarioError::spec(format!("topology '{name}': missing [[links]]")))?;
    let items = links_value.as_array().ok_or_else(|| {
        ScenarioError::spec(format!(
            "topology '{name}': 'links' must be an array of tables"
        ))
    })?;
    let mut links = Vec::with_capacity(items.len());
    for item in items {
        let lt = item.as_table().ok_or_else(|| {
            ScenarioError::spec(format!("topology '{name}': each link must be a table"))
        })?;
        reject_unknown_keys(
            lt,
            "[[topologies.links]]",
            &["src", "dst", "alpha_us", "bandwidth_gbps", "bidi"],
        )?;
        // Range-check against npus before narrowing to u32: a silent
        // wrap would route the link to a different, valid NPU.
        let endpoint = |key: &str| -> Result<u32, ScenarioError> {
            let v = expect_int(lt, "links", key)?;
            if v >= npus {
                return Err(ScenarioError::spec(format!(
                    "topology '{name}': link {key} = {v} out of range for {npus} NPUs"
                )));
            }
            Ok(v as u32)
        };
        let link = LinkAxis {
            alpha_us: expect_float(lt, "links", "alpha_us")?,
            bandwidth_gbps: expect_float(lt, "links", "bandwidth_gbps")?,
        };
        if link.alpha_us < 0.0 || link.bandwidth_gbps <= 0.0 {
            return Err(ScenarioError::spec(format!(
                "topology '{name}': link {link}: alpha must be >= 0 and bandwidth > 0"
            )));
        }
        links.push(CustomLink {
            src: endpoint("src")?,
            dst: endpoint("dst")?,
            link,
            bidi: lt.get("bidi").and_then(Value::as_bool).unwrap_or(false),
        });
    }
    let custom = CustomTopology {
        name: name.clone(),
        npus: npus as usize,
        links,
    };
    // Validate eagerly so errors surface at load, not mid-run.
    custom
        .build()
        .map_err(|e| ScenarioError::spec(format!("topology '{name}': {e}")))?;
    Ok(custom)
}

fn parse_sweep(
    t: &Table,
    customs: &BTreeMap<String, CustomTopology>,
) -> Result<SweepAxes, ScenarioError> {
    reject_unknown_keys(
        t,
        "[sweep]",
        &[
            "topology",
            "collective",
            "size",
            "chunks",
            "algo",
            "seed",
            "attempts",
            "link",
        ],
    )?;
    let topology = string_axis(t, "topology", &[])?;
    if topology.is_empty() {
        return Err(ScenarioError::spec(
            "sweep.topology must list at least one topology",
        ));
    }
    let collective = string_axis(t, "collective", &["all-reduce"])?;
    let size = string_axis(t, "size", &["64MB"])?;
    let algo = string_axis(t, "algo", &["tacos"])?;
    let chunks = int_axis(t, "chunks", &[1])?;
    let seed = int_axis(t, "seed", &[42])?;
    let attempts = int_axis(t, "attempts", &[1])?;
    let link = link_axis(t)?;

    let axes = SweepAxes {
        topology,
        collective,
        size,
        chunks: dedupe(chunks.iter().map(|&v| v as usize).collect()),
        algo,
        seed: dedupe(seed.iter().map(|&v| v as u64).collect()),
        attempts: dedupe(attempts.iter().map(|&v| v as usize).collect()),
        link,
    };

    // Validate every axis value eagerly.
    let probe = LinkAxis::default_paper().to_spec();
    for topo in &axes.topology {
        if let Some(name) = topo.strip_prefix("custom:") {
            if !customs.contains_key(name) {
                return Err(ScenarioError::spec(format!(
                    "sweep.topology references unknown custom topology '{name}'"
                )));
            }
            // Custom topologies carry their own per-link specs; sweeping
            // the link axis over them would produce identical points whose
            // reported link parameters are fiction.
            if axes.link.len() > 1 {
                return Err(ScenarioError::spec(format!(
                    "sweep.link has {} values but '{topo}' ignores the link axis \
                     (its links are defined in [[topologies]]); split it into a \
                     separate scenario or use a single link value",
                    axes.link.len()
                )));
            }
        } else {
            parse_topology(topo, probe)
                .map_err(|e| ScenarioError::spec(format!("sweep.topology '{topo}': {e}")))?;
        }
    }
    for c in &axes.collective {
        // Root indices are range-checked per-topology at run time; here
        // validate against the largest representable root.
        parse_pattern(c, usize::MAX)
            .map_err(|e| ScenarioError::spec(format!("sweep.collective '{c}': {e}")))?;
    }
    for s in &axes.size {
        parse_size(s).map_err(|e| ScenarioError::spec(format!("sweep.size '{s}': {e}")))?;
    }
    for a in &axes.algo {
        if a != "tacos" {
            parse_baseline(a, 0)
                .map_err(|e| ScenarioError::spec(format!("sweep.algo '{a}': {e}")))?;
        }
    }
    for &k in &axes.chunks {
        if k == 0 {
            return Err(ScenarioError::spec("sweep.chunks values must be >= 1"));
        }
    }
    for &a in &axes.attempts {
        if a == 0 {
            return Err(ScenarioError::spec("sweep.attempts values must be >= 1"));
        }
    }
    for l in &axes.link {
        if l.alpha_us < 0.0 || l.bandwidth_gbps <= 0.0 {
            return Err(ScenarioError::spec(format!(
                "sweep.link {l}: alpha must be >= 0 and bandwidth > 0"
            )));
        }
    }
    Ok(axes)
}

fn parse_run(t: &Table) -> Result<RunSettings, ScenarioError> {
    reject_unknown_keys(t, "[run]", &["simulate", "threads", "cache", "quiet"])?;
    let mut run = RunSettings::default();
    if let Some(v) = t.get("simulate") {
        run.simulate = v
            .as_bool()
            .ok_or_else(|| ScenarioError::spec("run.simulate must be a boolean"))?;
    }
    if let Some(v) = t.get("threads") {
        let n = v
            .as_int()
            .ok_or_else(|| ScenarioError::spec("run.threads must be an integer"))?;
        if n < 0 {
            return Err(ScenarioError::spec("run.threads must be >= 0"));
        }
        run.threads = n as usize;
    }
    match t.get("cache") {
        None => {}
        Some(Value::Bool(false)) => run.cache = None,
        Some(Value::Bool(true)) => {}
        Some(Value::Str(dir)) => run.cache = Some(dir.clone()),
        Some(other) => {
            return Err(ScenarioError::spec(format!(
                "run.cache must be a directory string or false, found {}",
                other.type_name()
            )))
        }
    }
    if let Some(v) = t.get("quiet") {
        run.quiet = v
            .as_bool()
            .ok_or_else(|| ScenarioError::spec("run.quiet must be a boolean"))?;
    }
    Ok(run)
}

/// Rejects misspelled or unsupported keys: in a declarative engine a
/// typoed axis (`seeds` for `seed`) would otherwise silently fall back to
/// its default and run a different grid than the author wrote.
fn reject_unknown_keys(t: &Table, context: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for key in t.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::spec(format!(
                "unknown key '{key}' in {context} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Reads an axis that may be a scalar or an array of scalars. An
/// explicitly empty array is rejected: it would silently expand to a
/// zero-point grid (omit the key to get the default instead).
fn axis_values<'a>(t: &'a Table, key: &str) -> Result<Option<Vec<&'a Value>>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Array(items)) if items.is_empty() => Err(ScenarioError::spec(format!(
            "sweep.{key} must not be an empty list (omit it for the default)"
        ))),
        Some(Value::Array(items)) => Ok(Some(items.iter().collect())),
        Some(scalar) => Ok(Some(vec![scalar])),
    }
}

fn string_axis(t: &Table, key: &str, default: &[&str]) -> Result<Vec<String>, ScenarioError> {
    match axis_values(t, key)? {
        None => Ok(default.iter().map(|s| s.to_string()).collect()),
        Some(values) => {
            let mut out = Vec::with_capacity(values.len());
            for v in values {
                out.push(
                    v.as_str()
                        .ok_or_else(|| {
                            ScenarioError::spec(format!(
                                "sweep.{key} entries must be strings, found {}",
                                v.type_name()
                            ))
                        })?
                        .to_string(),
                );
            }
            Ok(dedupe(out))
        }
    }
}

fn int_axis(t: &Table, key: &str, default: &[i64]) -> Result<Vec<i64>, ScenarioError> {
    match axis_values(t, key)? {
        None => Ok(default.to_vec()),
        Some(values) => {
            let mut out = Vec::with_capacity(values.len());
            for v in values {
                let n = v.as_int().ok_or_else(|| {
                    ScenarioError::spec(format!(
                        "sweep.{key} entries must be integers, found {}",
                        v.type_name()
                    ))
                })?;
                if n < 0 {
                    return Err(ScenarioError::spec(format!(
                        "sweep.{key} entries must be >= 0"
                    )));
                }
                out.push(n);
            }
            Ok(dedupe(out))
        }
    }
}

fn link_axis(t: &Table) -> Result<Vec<LinkAxis>, ScenarioError> {
    match axis_values(t, "link")? {
        None => Ok(vec![LinkAxis::default_paper()]),
        Some(values) => {
            let mut out = Vec::with_capacity(values.len());
            for v in values {
                let lt = v.as_table().ok_or_else(|| {
                    ScenarioError::spec(format!(
                        "sweep.link entries must be tables like {{ alpha_us = 0.5, bandwidth_gbps = 50.0 }}, found {}",
                        v.type_name()
                    ))
                })?;
                out.push(LinkAxis {
                    alpha_us: expect_float(lt, "link", "alpha_us")?,
                    bandwidth_gbps: expect_float(lt, "link", "bandwidth_gbps")?,
                });
            }
            Ok(dedupe(out))
        }
    }
}

/// Order-preserving dedupe, so axis cardinalities are exact.
fn dedupe<T: PartialEq>(values: Vec<T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for v in values {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn expect_table<'a>(doc: &'a Table, key: &str) -> Result<&'a Table, ScenarioError> {
    doc.get(key)
        .ok_or_else(|| ScenarioError::spec(format!("missing [{key}] table")))?
        .as_table()
        .ok_or_else(|| ScenarioError::spec(format!("'{key}' must be a table")))
}

fn expect_str<'a>(t: &'a Table, table: &str, key: &str) -> Result<&'a str, ScenarioError> {
    t.get(key)
        .ok_or_else(|| ScenarioError::spec(format!("missing {table}.{key}")))?
        .as_str()
        .ok_or_else(|| ScenarioError::spec(format!("{table}.{key} must be a string")))
}

fn opt_str<'a>(t: &'a Table, table: &str, key: &str) -> Result<Option<&'a str>, ScenarioError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ScenarioError::spec(format!("{table}.{key} must be a string"))),
    }
}

fn expect_int(t: &Table, table: &str, key: &str) -> Result<i64, ScenarioError> {
    let v = t
        .get(key)
        .ok_or_else(|| ScenarioError::spec(format!("missing {table}.{key}")))?
        .as_int()
        .ok_or_else(|| ScenarioError::spec(format!("{table}.{key} must be an integer")))?;
    if v < 0 {
        return Err(ScenarioError::spec(format!("{table}.{key} must be >= 0")));
    }
    Ok(v)
}

fn expect_float(t: &Table, table: &str, key: &str) -> Result<f64, ScenarioError> {
    let v = t
        .get(key)
        .ok_or_else(|| ScenarioError::spec(format!("missing {table}.{key}")))?
        .as_float()
        .ok_or_else(|| ScenarioError::spec(format!("{table}.{key} must be a number")))?;
    // Every float in a scenario is a physical quantity; an overflowed
    // literal (e.g. 1e999 parses to inf) would otherwise panic deep in
    // the unit types instead of producing a readable error.
    if !v.is_finite() {
        return Err(ScenarioError::spec(format!(
            "{table}.{key} must be finite (got {v})"
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// String-spec parsers. These are the single source of truth for the CLI's
// `--topology` / `--collective` / `--size` / `--algo` arguments too.
// ---------------------------------------------------------------------------

/// Parses a topology spec string (`mesh:3x3`, `ring:8`, `dgx1`, ...) into
/// a [`Topology`] with homogeneous `link` costs (heterogeneous families
/// like `rfs` and `dragonfly` derive their tiers from it).
///
/// # Errors
/// Returns a message for unknown families or malformed dimensions.
pub fn parse_topology(spec: &str, link: LinkSpec) -> Result<Topology, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let dims = |s: &str| -> Result<Vec<usize>, String> {
        s.split('x')
            .map(|d| {
                d.parse::<usize>()
                    .map_err(|e| format!("bad dimension '{d}': {e}"))
            })
            .collect()
    };
    let topo = match kind {
        "ring" => Topology::ring(
            rest.parse().map_err(|e| format!("bad ring size: {e}"))?,
            link,
            RingOrientation::Bidirectional,
        ),
        "ring-uni" => Topology::ring(
            rest.parse().map_err(|e| format!("bad ring size: {e}"))?,
            link,
            RingOrientation::Unidirectional,
        ),
        "fc" => {
            Topology::fully_connected(rest.parse().map_err(|e| format!("bad fc size: {e}"))?, link)
        }
        "mesh" => {
            let d = dims(rest)?;
            if d.len() != 2 {
                return Err("mesh needs RxC".into());
            }
            Topology::mesh_2d(d[0], d[1], link)
        }
        "torus" => {
            let d = dims(rest)?;
            match d.len() {
                2 => Topology::torus_2d(d[0], d[1], link),
                3 => Topology::torus_3d(d[0], d[1], d[2], link),
                _ => return Err("torus needs XxY or XxYxZ".into()),
            }
        }
        "hypercube" => {
            let d = dims(rest)?;
            if d.len() != 3 {
                return Err("hypercube needs XxYxZ".into());
            }
            Topology::hypercube_3d(d[0], d[1], d[2], link)
        }
        "switch" => {
            let (n, degree) = match rest.split_once(":d") {
                Some((n, d)) => (
                    n.parse().map_err(|e| format!("bad switch size: {e}"))?,
                    d.parse().map_err(|e| format!("bad degree: {e}"))?,
                ),
                None => (
                    rest.parse().map_err(|e| format!("bad switch size: {e}"))?,
                    1,
                ),
            };
            Topology::switch(n, link, degree)
        }
        "rfs" => {
            let d = dims(rest)?;
            if d.len() != 3 {
                return Err("rfs needs RxFxS".into());
            }
            Topology::rfs_3d(
                d[0],
                d[1],
                d[2],
                link.alpha(),
                [
                    link.bandwidth().as_gbps() * 4.0,
                    link.bandwidth().as_gbps() * 2.0,
                    link.bandwidth().as_gbps(),
                ],
            )
        }
        "dragonfly" => {
            let d = dims(rest)?;
            if d.len() != 2 {
                return Err("dragonfly needs GROUPSxPER_GROUP".into());
            }
            let global = LinkSpec::new(
                link.alpha(),
                Bandwidth::gbps(link.bandwidth().as_gbps() / 2.0),
            );
            Topology::dragonfly(d[0], d[1], link, global)
        }
        "dgx1" => Topology::dgx1(link),
        other => return Err(format!("unknown topology kind '{other}'")),
    };
    topo.map_err(|e| e.to_string())
}

/// Parses a collective pattern name, optionally rooted (`broadcast:3`).
///
/// # Errors
/// Returns a message for unknown patterns or out-of-range roots.
pub fn parse_pattern(s: &str, num_npus: usize) -> Result<CollectivePattern, String> {
    let (name, root) = match s.split_once(':') {
        Some((name, root)) => {
            let root: usize = root
                .parse()
                .map_err(|e| format!("bad root '{root}': {e}"))?;
            if root >= num_npus {
                return Err(format!("root {root} out of range for {num_npus} NPUs"));
            }
            (name, NpuId::new(root as u32))
        }
        None => (s, NpuId::new(0)),
    };
    match name {
        "all-gather" | "allgather" | "ag" => Ok(CollectivePattern::AllGather),
        "reduce-scatter" | "reducescatter" | "rs" => Ok(CollectivePattern::ReduceScatter),
        "all-reduce" | "allreduce" | "ar" => Ok(CollectivePattern::AllReduce),
        "all-to-all" | "alltoall" | "a2a" => Ok(CollectivePattern::AllToAll),
        "broadcast" | "bcast" => Ok(CollectivePattern::Broadcast { root }),
        "reduce" => Ok(CollectivePattern::Reduce { root }),
        "gather" => Ok(CollectivePattern::Gather { root }),
        "scatter" => Ok(CollectivePattern::Scatter { root }),
        other => Err(format!("unknown collective '{other}'")),
    }
}

/// Parses a baseline algorithm name into its [`BaselineKind`].
///
/// # Errors
/// Returns a message for unknown algorithm names.
pub fn parse_baseline(s: &str, seed: u64) -> Result<BaselineKind, String> {
    match s {
        "ring" => Ok(BaselineKind::Ring),
        "ring-uni" => Ok(BaselineKind::RingUnidirectional),
        "direct" => Ok(BaselineKind::Direct),
        "rhd" => Ok(BaselineKind::Rhd),
        "dbt" => Ok(BaselineKind::Dbt { pipeline: 4 }),
        "blueconnect" => Ok(BaselineKind::BlueConnect { chunks: 4 }),
        "themis" => Ok(BaselineKind::Themis { chunks: 4 }),
        "multitree" => Ok(BaselineKind::MultiTree),
        "ccube" => Ok(BaselineKind::CCube { pipeline: 4 }),
        "taccl" => Ok(BaselineKind::TacclLike(TacclConfig {
            seed,
            ..TacclConfig::default()
        })),
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

/// Parses a human-readable byte size (`64MB`, `1GiB`, `512`).
///
/// # Errors
/// Returns a message for unparseable numbers or unknown units.
pub fn parse_size(s: &str) -> Result<ByteSize, String> {
    let s = s.trim();
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .unwrap_or((s, "B"));
    let value: u64 = num.parse().map_err(|e| format!("bad size '{s}': {e}"))?;
    match unit.to_ascii_uppercase().as_str() {
        "B" | "" => Ok(ByteSize::bytes(value)),
        "KB" => Ok(ByteSize::kb(value)),
        "MB" => Ok(ByteSize::mb(value)),
        "GB" => Ok(ByteSize::gb(value)),
        "KIB" => Ok(ByteSize::kib(value)),
        "MIB" => Ok(ByteSize::mib(value)),
        "GIB" => Ok(ByteSize::gib(value)),
        other => Err(format!("unknown size unit '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[scenario]
name = "t"

[sweep]
topology = ["mesh:2x2"]
"#;

    #[test]
    fn minimal_spec_gets_defaults() {
        let spec = ScenarioSpec::from_toml_str(MINIMAL).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.sweep.collective, ["all-reduce"]);
        assert_eq!(spec.sweep.size, ["64MB"]);
        assert_eq!(spec.sweep.algo, ["tacos"]);
        assert_eq!(spec.sweep.chunks, [1]);
        assert_eq!(spec.sweep.seed, [42]);
        assert_eq!(spec.sweep.attempts, [1]);
        assert_eq!(spec.sweep.link, [LinkAxis::default_paper()]);
        assert_eq!(spec.run.cache.as_deref(), Some(".tacos-cache"));
        assert!(!spec.run.simulate);
    }

    #[test]
    fn scalars_accepted_as_one_element_axes() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
[scenario]
name = "t"
[sweep]
topology = "ring:4"
size = "1MB"
chunks = 2
"#,
        )
        .unwrap();
        assert_eq!(spec.sweep.topology, ["ring:4"]);
        assert_eq!(spec.sweep.size, ["1MB"]);
        assert_eq!(spec.sweep.chunks, [2]);
    }

    #[test]
    fn axes_are_deduped_in_order() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
[scenario]
name = "t"
[sweep]
topology = ["ring:4", "mesh:2x2", "ring:4"]
seed = [7, 7, 3]
"#,
        )
        .unwrap();
        assert_eq!(spec.sweep.topology, ["ring:4", "mesh:2x2"]);
        assert_eq!(spec.sweep.seed, [7, 3]);
    }

    #[test]
    fn bad_axis_values_are_rejected_at_load() {
        for (snippet, needle) in [
            ("topology = [\"blob:3\"]", "unknown topology kind"),
            (
                "topology = [\"mesh:2x2\"]\ncollective = [\"frobnicate\"]",
                "unknown collective",
            ),
            (
                "topology = [\"mesh:2x2\"]\nsize = [\"12parsecs\"]",
                "unknown size unit",
            ),
            (
                "topology = [\"mesh:2x2\"]\nalgo = [\"magic\"]",
                "unknown algorithm",
            ),
            ("topology = [\"mesh:2x2\"]\nchunks = [0]", "chunks"),
            ("topology = [\"mesh:2x2\"]\nattempts = [0]", "attempts"),
            ("topology = [\"custom:nope\"]", "unknown custom topology"),
        ] {
            let text = format!("[scenario]\nname = \"t\"\n[sweep]\n{snippet}\n");
            let err = ScenarioSpec::from_toml_str(&text).unwrap_err().to_string();
            assert!(err.contains(needle), "expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn empty_axis_arrays_are_rejected() {
        for axis in [
            "topology = []",
            "size = []",
            "algo = []",
            "seed = []",
            "chunks = []",
        ] {
            let text =
                format!("[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"ring:4\"]\n{axis}\n");
            // The duplicate `topology` key case is a parse error; every
            // other empty axis must be a spec error. Both must fail.
            let err = ScenarioSpec::from_toml_str(&text).unwrap_err().to_string();
            assert!(
                err.contains("must not be an empty list") || err.contains("duplicate key"),
                "axis '{axis}': got '{err}'"
            );
        }
    }

    #[test]
    fn misspelled_keys_are_rejected_not_defaulted() {
        // `seeds` instead of `seed` must not silently run the default grid.
        let err = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"ring:4\"]\nseeds = [1, 2]\n",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown key 'seeds'"),
            "got: {err}"
        );
        let err = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\ndescripton = \"typo\"\n[sweep]\ntopology = [\"ring:4\"]\n",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown key 'descripton'"),
            "got: {err}"
        );
        let err = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"ring:4\"]\n[run]\nsimulat = true\n",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown key 'simulat'"),
            "got: {err}"
        );
    }

    #[test]
    fn run_quiet_can_be_set_in_the_file() {
        let spec = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"ring:4\"]\n[run]\nquiet = true\n",
        )
        .unwrap();
        assert!(spec.run.quiet);
    }

    #[test]
    fn non_finite_link_values_are_rejected() {
        // 1e999 overflows f64 to infinity; it must be a readable spec
        // error, not a panic inside the unit types at run time.
        let err = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"ring:4\"]\n\
             link = [{ alpha_us = 0.5, bandwidth_gbps = 1e999 }]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("must be finite"), "got: {err}");
        let err = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"ring:4\"]\n\
             link = [{ alpha_us = 1e999, bandwidth_gbps = 50.0 }]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("must be finite"), "got: {err}");
    }

    #[test]
    fn custom_link_endpoints_do_not_wrap_through_u32() {
        // 2^32 would truncate to NPU 0 if cast before the range check.
        let err = ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"t\"\n[sweep]\ntopology = [\"custom:pair\"]\n\
             [[topologies]]\nname = \"pair\"\nnpus = 2\n\
             [[topologies.links]]\nsrc = 4294967296\ndst = 1\nalpha_us = 0.5\nbandwidth_gbps = 50.0\nbidi = true\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "got: {err}");
    }

    #[test]
    fn custom_topology_rejects_multi_valued_link_axis() {
        let err = ScenarioSpec::from_toml_str(
            r#"
[scenario]
name = "t"
[sweep]
topology = ["custom:pair"]
link = [
    { alpha_us = 0.5, bandwidth_gbps = 50.0 },
    { alpha_us = 0.5, bandwidth_gbps = 100.0 },
]
[[topologies]]
name = "pair"
npus = 2
[[topologies.links]]
src = 0
dst = 1
alpha_us = 0.5
bandwidth_gbps = 100.0
bidi = true
"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("ignores the link axis"),
            "got: {err}"
        );
    }

    #[test]
    fn missing_tables_are_reported() {
        assert!(ScenarioSpec::from_toml_str("x = 1")
            .unwrap_err()
            .to_string()
            .contains("scenario"));
        assert!(ScenarioSpec::from_toml_str("[scenario]\nname = \"t\"")
            .unwrap_err()
            .to_string()
            .contains("sweep"));
    }

    #[test]
    fn custom_topology_builds_and_is_referenced() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
[scenario]
name = "hetero"

[sweep]
topology = ["custom:pair"]

[[topologies]]
name = "pair"
npus = 2

[[topologies.links]]
src = 0
dst = 1
alpha_us = 0.5
bandwidth_gbps = 100.0
bidi = true
"#,
        )
        .unwrap();
        let topo = spec
            .build_topology("custom:pair", LinkAxis::default_paper().to_spec())
            .unwrap();
        assert_eq!(topo.num_npus(), 2);
        assert_eq!(topo.num_links(), 2);
    }

    #[test]
    fn invalid_custom_topology_rejected_at_load() {
        // Link endpoint out of range for the declared NPU count.
        let err = ScenarioSpec::from_toml_str(
            r#"
[scenario]
name = "bad"
[sweep]
topology = ["custom:oob"]
[[topologies]]
name = "oob"
npus = 2
[[topologies.links]]
src = 0
dst = 5
alpha_us = 0.5
bandwidth_gbps = 100.0
bidi = true
"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "got: {err}");
    }

    #[test]
    fn run_settings_parse() {
        let spec = ScenarioSpec::from_toml_str(
            r#"
[scenario]
name = "t"
[sweep]
topology = ["ring:4"]
[run]
simulate = true
threads = 8
cache = false
"#,
        )
        .unwrap();
        assert!(spec.run.simulate);
        assert_eq!(spec.run.threads, 8);
        assert_eq!(spec.run.cache, None);
    }

    #[test]
    fn string_parsers_cover_paper_specs() {
        let link = LinkAxis::default_paper().to_spec();
        assert_eq!(parse_topology("ring:8", link).unwrap().num_npus(), 8);
        assert_eq!(parse_topology("mesh:3x3", link).unwrap().num_npus(), 9);
        assert_eq!(parse_topology("torus:2x2x2", link).unwrap().num_npus(), 8);
        assert_eq!(parse_topology("dgx1", link).unwrap().num_npus(), 8);
        assert!(parse_topology("blob:3", link).is_err());
        assert_eq!(
            parse_pattern("ar", 4).unwrap(),
            CollectivePattern::AllReduce
        );
        assert!(parse_pattern("gather:9", 4).is_err());
        assert!(matches!(
            parse_baseline("ring", 0).unwrap(),
            BaselineKind::Ring
        ));
        assert_eq!(parse_size("64MB").unwrap(), ByteSize::mb(64));
    }
}
