//! The Ring collective algorithm (paper Fig. 5a) — the default algorithm of
//! production CCLs and the paper's primary baseline (footnote 3: the
//! bidirectional variant is used throughout the evaluation).
//!
//! Like NCCL, the generator *searches* for ring embeddings: it extracts up
//! to [`MAX_PARALLEL_RINGS`] edge-disjoint Hamiltonian cycles from the
//! physical topology (paper footnote 4: "either one logical ring is mapped
//! over the physical topology, or multiple parallel rings") and splits the
//! payload across them. Where no Hamiltonian cycle exists (or the search
//! budget runs out) the logical ring falls back to NPU-id order and the
//! simulator routes each hop over shortest paths — exposing the
//! over/undersubscription of paper Figs. 1–2.

use std::collections::HashMap;

use tacos_collective::algorithm::{
    AlgorithmBuilder, CollectiveAlgorithm, TransferId, TransferKind,
};
use tacos_collective::{ChunkId, Collective, CollectivePattern};
use tacos_topology::{LinkId, NpuId, Topology};

use crate::error::BaselineError;

/// Direction of one logical ring pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// NPU `i` sends to `(i+1) mod n`.
    Forward,
    /// NPU `i` sends to `(i-1) mod n`.
    Backward,
}

impl Direction {
    fn next(self, i: usize, n: usize) -> usize {
        match self {
            Direction::Forward => (i + 1) % n,
            Direction::Backward => (i + n - 1) % n,
        }
    }
}

/// Generates the unidirectional Ring algorithm.
///
/// Supports All-Reduce (reduce-scatter pass + all-gather pass, `2(n-1)`
/// steps), All-Gather, and Reduce-Scatter (`n-1` steps each).
///
/// # Errors
/// [`BaselineError::UnsupportedPattern`] for rooted patterns.
pub fn ring_unidirectional(
    topo: &Topology,
    collective: &Collective,
) -> Result<CollectiveAlgorithm, BaselineError> {
    check_npus(topo, collective)?;
    let n = collective.num_npus();
    let num_chunks = n as u32;
    let chunk_size = collective.total_size().split(num_chunks as u64);
    let mut b = AlgorithmBuilder::new("ring", n, chunk_size, collective.total_size());
    generate_pattern(&mut b, collective.pattern(), n, Direction::Forward, 0)?;
    Ok(b.build())
}

/// Generates the bidirectional Ring algorithm (the paper's baseline): the
/// payload splits in half, each half running an independent unidirectional
/// ring in opposite directions.
///
/// # Errors
/// [`BaselineError::UnsupportedPattern`] for rooted patterns.
pub fn ring_bidirectional(
    topo: &Topology,
    collective: &Collective,
) -> Result<CollectiveAlgorithm, BaselineError> {
    check_npus(topo, collective)?;
    let n = collective.num_npus();
    let num_chunks = 2 * n as u32;
    let chunk_size = collective.total_size().split(num_chunks as u64);
    let mut b = AlgorithmBuilder::new("ring-bi", n, chunk_size, collective.total_size());
    generate_pattern(&mut b, collective.pattern(), n, Direction::Forward, 0)?;
    generate_pattern(
        &mut b,
        collective.pattern(),
        n,
        Direction::Backward,
        n as u32,
    )?;
    Ok(b.build())
}

/// Maximum number of parallel rings [`ring_embedded`] extracts.
pub const MAX_PARALLEL_RINGS: usize = 4;

/// Generates a Ring algorithm over **searched ring embeddings** (NCCL
/// style): extracts up to `max_rings` edge-disjoint Hamiltonian cycles
/// from the physical topology and splits the payload across them, each
/// running bidirectionally. Falls back to the naive id-order ring when no
/// Hamiltonian cycle exists.
///
/// This is the right "Ring" for NVLink boxes like DGX-1 (paper Fig. 17b,
/// where Ring reaches ~99% of ideal); [`ring_bidirectional`] remains the
/// naive mapping that motivates Figs. 1–2.
///
/// # Errors
/// [`BaselineError::UnsupportedPattern`] for rooted patterns.
pub fn ring_embedded(
    topo: &Topology,
    collective: &Collective,
    max_rings: usize,
) -> Result<CollectiveAlgorithm, BaselineError> {
    check_npus(topo, collective)?;
    let n = collective.num_npus();
    let rings = find_parallel_rings(topo, max_rings.clamp(1, MAX_PARALLEL_RINGS));
    if rings.is_empty() {
        return ring_bidirectional(topo, collective);
    }
    let num_chunks = (2 * rings.len() * n) as u64;
    let chunk_size = collective.total_size().split(num_chunks);
    let mut b = AlgorithmBuilder::new("ring-embedded", n, chunk_size, collective.total_size());
    // Pin every hop of every ring to a distinct physical link so parallel
    // rings over doubled links (DGX-1) never contend.
    let mut pool: HashMap<(u32, u32), Vec<LinkId>> = HashMap::new();
    for link in topo.links() {
        pool.entry((link.src().raw(), link.dst().raw()))
            .or_default()
            .push(link.id());
    }
    for (r, order) in rings.iter().enumerate() {
        let take = |pool: &mut HashMap<(u32, u32), Vec<LinkId>>, a: NpuId, bnpu: NpuId| {
            pool.get_mut(&(a.raw(), bnpu.raw()))
                .and_then(Vec::pop)
                .expect("ring extraction guarantees link capacity")
        };
        let fwd: Vec<LinkId> = (0..n)
            .map(|i| take(&mut pool, order[i], order[(i + 1) % n]))
            .collect();
        let bwd: Vec<LinkId> = (0..n)
            .map(|i| take(&mut pool, order[i], order[(i + n - 1) % n]))
            .collect();
        let base = (2 * r * n) as u32;
        generate_pattern_over(
            &mut b,
            collective.pattern(),
            order,
            Direction::Forward,
            base,
            Some(&fwd),
        )?;
        generate_pattern_over(
            &mut b,
            collective.pattern(),
            order,
            Direction::Backward,
            base + n as u32,
            Some(&bwd),
        )?;
    }
    Ok(b.build())
}

/// Greedily extracts up to `max_rings` edge-disjoint Hamiltonian cycles
/// (bidirectional capacity required for each hop), Warnsdorff-ordered DFS
/// with a global step budget. Returns each cycle as an NPU order.
pub fn find_parallel_rings(topo: &Topology, max_rings: usize) -> Vec<Vec<NpuId>> {
    let n = topo.num_npus();
    if n < 3 {
        return Vec::new();
    }
    // Remaining undirected capacity per pair: min(fwd links, bwd links).
    let mut capacity = std::collections::HashMap::<(u32, u32), u32>::new();
    for link in topo.links() {
        let key = (
            link.src().raw().min(link.dst().raw()),
            link.src().raw().max(link.dst().raw()),
        );
        *capacity.entry(key).or_insert(0) += 1;
    }
    // A pair's bidirectional capacity = floor(total directed links / 2).
    for v in capacity.values_mut() {
        *v /= 2;
    }
    let mut rings = Vec::new();
    for _ in 0..max_rings {
        let mut budget = 500_000usize;
        let mut path = vec![0u32];
        let mut visited = vec![false; n];
        visited[0] = true;
        if dfs_ring(topo, &mut capacity, &mut path, &mut visited, &mut budget) {
            let ring: Vec<NpuId> = path.iter().map(|&v| NpuId::new(v)).collect();
            for w in 0..ring.len() {
                let a = ring[w].raw();
                let bb = ring[(w + 1) % ring.len()].raw();
                *capacity
                    .get_mut(&(a.min(bb), a.max(bb)))
                    .expect("used edge") -= 1;
            }
            rings.push(ring);
        } else {
            break;
        }
    }
    rings
}

fn dfs_ring(
    topo: &Topology,
    capacity: &mut std::collections::HashMap<(u32, u32), u32>,
    path: &mut Vec<u32>,
    visited: &mut [bool],
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let n = topo.num_npus();
    let cur = *path.last().expect("non-empty path");
    if path.len() == n {
        // Close the cycle back to the start.
        let key = (cur.min(path[0]), cur.max(path[0]));
        return capacity.get(&key).copied().unwrap_or(0) > 0;
    }
    // Candidate next hops with remaining bidirectional capacity,
    // Warnsdorff order (fewest onward options first).
    let mut nexts: Vec<(usize, u32)> = Vec::new();
    for &lid in topo.out_links(NpuId::new(cur)) {
        let next = topo.link(lid).dst().raw();
        if visited[next as usize] {
            continue;
        }
        let key = (cur.min(next), cur.max(next));
        if capacity.get(&key).copied().unwrap_or(0) == 0 {
            continue;
        }
        if nexts.iter().any(|&(_, v)| v == next) {
            continue;
        }
        let onward = topo
            .out_links(NpuId::new(next))
            .iter()
            .filter(|&&l| {
                let w = topo.link(l).dst().raw();
                !visited[w as usize]
                    && capacity
                        .get(&(next.min(w), next.max(w)))
                        .copied()
                        .unwrap_or(0)
                        > 0
            })
            .count();
        nexts.push((onward, next));
    }
    nexts.sort_unstable();
    for (_, next) in nexts {
        path.push(next);
        visited[next as usize] = true;
        if dfs_ring(topo, capacity, path, visited, budget) {
            return true;
        }
        path.pop();
        visited[next as usize] = false;
    }
    false
}

fn check_npus(topo: &Topology, collective: &Collective) -> Result<(), BaselineError> {
    if topo.num_npus() != collective.num_npus() {
        return Err(BaselineError::NpuCountMismatch {
            topology: topo.num_npus(),
            collective: collective.num_npus(),
        });
    }
    Ok(())
}

fn generate_pattern(
    b: &mut AlgorithmBuilder,
    pattern: CollectivePattern,
    n: usize,
    dir: Direction,
    chunk_base: u32,
) -> Result<(), BaselineError> {
    let order: Vec<NpuId> = (0..n as u32).map(NpuId::new).collect();
    generate_pattern_over(b, pattern, &order, dir, chunk_base, None)
}

fn generate_pattern_over(
    b: &mut AlgorithmBuilder,
    pattern: CollectivePattern,
    order: &[NpuId],
    dir: Direction,
    chunk_base: u32,
    links: Option<&[LinkId]>,
) -> Result<(), BaselineError> {
    let n = order.len();
    match pattern {
        CollectivePattern::AllGather => {
            ring_pass(
                b,
                order,
                dir,
                chunk_base,
                0,
                TransferKind::Copy,
                links,
                &mut vec![None; n],
            );
            Ok(())
        }
        CollectivePattern::ReduceScatter => {
            ring_pass(
                b,
                order,
                dir,
                chunk_base,
                0,
                TransferKind::Reduce,
                links,
                &mut vec![None; n],
            );
            Ok(())
        }
        CollectivePattern::AllReduce => {
            // Reduce-scatter pass, then all-gather pass; the AG pass's first
            // send at NPU i forwards the segment reduced into i — segment
            // (i+1) mod n, hence the shift — so it depends on the last RS
            // receive there.
            let mut last_recv: Vec<Option<TransferId>> = vec![None; n];
            ring_pass(
                b,
                order,
                dir,
                chunk_base,
                0,
                TransferKind::Reduce,
                links,
                &mut last_recv,
            );
            ring_pass(
                b,
                order,
                dir,
                chunk_base,
                1,
                TransferKind::Copy,
                links,
                &mut last_recv,
            );
            Ok(())
        }
        CollectivePattern::Broadcast { .. }
        | CollectivePattern::Reduce { .. }
        | CollectivePattern::AllToAll
        | CollectivePattern::Gather { .. }
        | CollectivePattern::Scatter { .. } => Err(BaselineError::UnsupportedPattern {
            baseline: "ring",
            pattern: pattern.short_name(),
        }),
    }
}

/// One `n-1`-step ring pass. `last_recv[i]` carries the dependency for NPU
/// `i`'s first send (its most recent receive from the previous pass) and is
/// updated to the final receive of this pass.
///
/// At step `s`, NPU `i` sends segment `σ(i, s)` to its ring successor,
/// where `σ(i, s) = (i + shift - s) mod n` for forward rings (and mirrored
/// for backward). Each send of a segment depends on receiving that segment
/// in the previous step. `shift = 1` models the all-gather pass of an
/// All-Reduce, which starts from the segment reduced *into* each NPU.
/// `links`, when given, maps ring position `i` to the pinned physical
/// link from `order[i]` toward its successor in this pass's direction.
#[allow(clippy::too_many_arguments)]
fn ring_pass(
    b: &mut AlgorithmBuilder,
    order: &[NpuId],
    dir: Direction,
    chunk_base: u32,
    shift: usize,
    kind: TransferKind,
    links: Option<&[LinkId]>,
    last_recv: &mut [Option<TransferId>],
) {
    let n = order.len();
    // segment index owned/forwarded by ring position i at step s
    let segment = |i: usize, s: usize| -> u32 {
        match dir {
            Direction::Forward => ((i + shift + n - s % n) % n) as u32,
            Direction::Backward => ((i + n - shift + s) % n) as u32,
        }
    };
    // receive[i] = transfer that most recently delivered a segment to
    // ring position i
    let mut prev_recv: Vec<Option<TransferId>> = last_recv.to_vec();
    for s in 0..n - 1 {
        let mut this_recv: Vec<Option<TransferId>> = vec![None; n];
        for i in 0..n {
            let dst = dir.next(i, n);
            let seg = segment(i, s);
            let deps: Vec<TransferId> = prev_recv[i].into_iter().collect();
            let id = match links {
                Some(links) => b.push_on_link(
                    ChunkId::new(chunk_base + seg),
                    1,
                    order[i],
                    order[dst],
                    kind,
                    links[i],
                    deps,
                ),
                None => b.push(
                    ChunkId::new(chunk_base + seg),
                    order[i],
                    order[dst],
                    kind,
                    deps,
                ),
            };
            this_recv[dst] = Some(id);
        }
        prev_recv = this_recv;
    }
    last_recv.copy_from_slice(&prev_recv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_sim::Simulator;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, RingOrientation, Time};

    fn spec() -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
    }

    #[test]
    fn unidirectional_all_gather_matches_formula() {
        // AG on its preferred topology: (n-1) * (alpha + beta*S/n).
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let coll = Collective::all_gather(4, ByteSize::mb(4)).unwrap();
        let algo = ring_unidirectional(&topo, &coll).unwrap();
        assert_eq!(algo.len(), 12);
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        let expected = spec().cost(ByteSize::mb(1)) * 3;
        assert_eq!(report.collective_time(), expected);
    }

    #[test]
    fn unidirectional_all_reduce_matches_formula() {
        // AR on a ring: 2(n-1) * (alpha + beta*S/n).
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let coll = Collective::all_reduce(4, ByteSize::mb(4)).unwrap();
        let algo = ring_unidirectional(&topo, &coll).unwrap();
        assert_eq!(algo.len(), 24);
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        assert_eq!(report.collective_time(), spec().cost(ByteSize::mb(1)) * 6);
    }

    #[test]
    fn bidirectional_all_reduce_uses_both_directions() {
        let topo = Topology::ring(8, spec(), RingOrientation::Bidirectional).unwrap();
        let coll = Collective::all_reduce(8, ByteSize::mb(8)).unwrap();
        let algo = ring_bidirectional(&topo, &coll).unwrap();
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        // Two independent rings over halves: 2(n-1)*(alpha + beta*S/(2n)).
        let expected = spec().cost(ByteSize::mb(8).split(16)) * 14;
        assert_eq!(report.collective_time(), expected);
        // Every link of the bidirectional ring carries traffic.
        assert!(report.link_bytes().iter().all(|&b| b > 0));
    }

    #[test]
    fn reduce_scatter_is_n_minus_one_steps() {
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let coll = Collective::reduce_scatter(4, ByteSize::mb(4)).unwrap();
        let algo = ring_unidirectional(&topo, &coll).unwrap();
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        assert_eq!(report.collective_time(), spec().cost(ByteSize::mb(1)) * 3);
        for t in algo.transfers() {
            assert_eq!(t.kind(), TransferKind::Reduce);
        }
    }

    #[test]
    fn ring_on_fully_connected_underutilizes() {
        // Paper Fig. 2a: Ring on FC leaves most links idle.
        let topo = Topology::fully_connected(8, spec()).unwrap();
        let coll = Collective::all_reduce(8, ByteSize::mb(8)).unwrap();
        let algo = ring_bidirectional(&topo, &coll).unwrap();
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        let idle = report.link_bytes().iter().filter(|&&b| b == 0).count();
        // Only the 16 "adjacent" links of 56 carry traffic.
        assert_eq!(idle, 40);
    }

    #[test]
    fn rooted_patterns_unsupported() {
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let coll = Collective::broadcast(4, NpuId::new(0), ByteSize::mb(1)).unwrap();
        assert!(matches!(
            ring_unidirectional(&topo, &coll),
            Err(BaselineError::UnsupportedPattern { .. })
        ));
    }

    #[test]
    fn embedded_ring_on_dgx1_finds_parallel_rings() {
        let topo =
            Topology::dgx1(LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0))).unwrap();
        let rings = find_parallel_rings(&topo, 4);
        // The hybrid cube-mesh supports at least two edge-disjoint
        // bidirectional Hamiltonian rings.
        assert!(rings.len() >= 2, "found {} rings", rings.len());
        for ring in &rings {
            assert_eq!(ring.len(), 8);
            for w in 0..8 {
                assert!(
                    topo.has_link(ring[w], ring[(w + 1) % 8]),
                    "missing physical link in ring"
                );
            }
        }
        // Parallel rings outperform the naive id-order ring on DGX-1.
        let coll = Collective::all_reduce(8, ByteSize::gb(1)).unwrap();
        let naive = Simulator::new()
            .simulate(&topo, &ring_bidirectional(&topo, &coll).unwrap())
            .unwrap()
            .collective_time();
        let embedded = Simulator::new()
            .simulate(&topo, &ring_embedded(&topo, &coll, 4).unwrap())
            .unwrap()
            .collective_time();
        assert!(embedded < naive, "embedded {embedded} vs naive {naive}");
    }

    #[test]
    fn embedded_ring_falls_back_without_hamiltonian_cycle() {
        // A star has no Hamiltonian cycle.
        let mut b = tacos_topology::TopologyBuilder::new("star");
        b.npus(4);
        for leaf in 1..4u32 {
            b.bidi_link(NpuId::new(0), NpuId::new(leaf), spec());
        }
        let topo = b.build().unwrap();
        assert!(find_parallel_rings(&topo, 2).is_empty());
        let coll = Collective::all_reduce(4, ByteSize::mb(4)).unwrap();
        let algo = ring_embedded(&topo, &coll, 2).unwrap();
        assert_eq!(algo.name(), "ring-bi"); // fallback
    }

    #[test]
    fn npu_mismatch_rejected() {
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let coll = Collective::all_gather(8, ByteSize::mb(8)).unwrap();
        assert!(matches!(
            ring_unidirectional(&topo, &coll),
            Err(BaselineError::NpuCountMismatch { .. })
        ));
    }
}
