//! Criterion microbenchmark: TACOS synthesis speed per topology family —
//! the measurement behind the Fig. 19 scaling claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tacos_collective::Collective;
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_topology::{ByteSize, Topology};

/// The paper's default link: alpha = 0.5 us, 1/beta = 50 GB/s.
fn default_spec() -> tacos_topology::LinkSpec {
    tacos_topology::LinkSpec::new(
        tacos_topology::Time::from_micros(0.5),
        tacos_topology::Bandwidth::gbps(50.0),
    )
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for side in [4usize, 6, 8] {
        let topo = Topology::mesh_2d(side, side, default_spec()).unwrap();
        let n = topo.num_npus();
        let coll = Collective::all_gather(n, ByteSize::mb(n as u64)).unwrap();
        group.bench_with_input(BenchmarkId::new("mesh2d_all_gather", n), &n, |b, _| {
            let synth = Synthesizer::new(SynthesizerConfig::default().with_record_transfers(false));
            b.iter(|| synth.synthesize(&topo, &coll).unwrap().collective_time())
        });
    }
    for side in [2usize, 3, 4] {
        let topo = Topology::hypercube_3d(side, side, side, default_spec()).unwrap();
        let n = topo.num_npus();
        let coll = Collective::all_gather(n, ByteSize::mb(n as u64)).unwrap();
        group.bench_with_input(BenchmarkId::new("hypercube3d_all_gather", n), &n, |b, _| {
            let synth = Synthesizer::new(SynthesizerConfig::default().with_record_transfers(false));
            b.iter(|| synth.synthesize(&topo, &coll).unwrap().collective_time())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
