//! Physical links and the α–β cost model (paper §IV-F, Fig. 12).

use std::fmt;

use crate::ids::{LinkId, NpuId};
use crate::units::{Bandwidth, ByteSize, Time};

/// Cost parameters of one link under the α–β model.
///
/// `α` is the fixed per-message latency; `β` is the serialization delay per
/// byte (reciprocal bandwidth). A transmission of `n` bytes costs
/// `α + β·n` ([`LinkSpec::cost`]).
///
/// ```
/// use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time};
/// // The heterogeneous link of paper Fig. 12(a): α = 0.5 µs, 100 GB/s.
/// let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(100.0));
/// // 1 MB chunk => 0.5 µs + 10 µs = 10.5 µs... the paper rounds per-GB/s:
/// assert_eq!(spec.cost(ByteSize::mb(1)), Time::from_micros(10.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    alpha: Time,
    bandwidth: Bandwidth,
}

impl LinkSpec {
    /// Creates a link spec from latency `α` and bandwidth (1/β).
    pub fn new(alpha: Time, bandwidth: Bandwidth) -> Self {
        LinkSpec { alpha, bandwidth }
    }

    /// The link latency α.
    pub fn alpha(&self) -> Time {
        self.alpha
    }

    /// The link bandwidth 1/β.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// β in picoseconds per byte.
    pub fn beta_ps_per_byte(&self) -> f64 {
        self.bandwidth.beta_ps_per_byte()
    }

    /// Transmission cost of `size` bytes: `α + β·size`.
    pub fn cost(&self, size: ByteSize) -> Time {
        self.alpha + self.bandwidth.serialization_delay(size)
    }

    /// Returns a spec with the bandwidth divided by `degree`.
    ///
    /// Used by switch unwinding (paper §IV-G): a degree-`d` unwinding keeps α
    /// but multiplies β by `d` because `d` point-to-point links share the
    /// switch port bandwidth.
    ///
    /// # Panics
    /// Panics if `degree` is zero.
    pub fn share_bandwidth(&self, degree: u32) -> LinkSpec {
        assert!(degree > 0, "bandwidth sharing degree must be positive");
        LinkSpec {
            alpha: self.alpha,
            bandwidth: Bandwidth::bytes_per_sec(self.bandwidth.as_bytes_per_sec() / degree as f64),
        }
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α={} 1/β={}", self.alpha, self.bandwidth)
    }
}

/// One unidirectional physical link in a topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    id: LinkId,
    src: NpuId,
    dst: NpuId,
    spec: LinkSpec,
}

impl Link {
    pub(crate) fn new(id: LinkId, src: NpuId, dst: NpuId, spec: LinkSpec) -> Self {
        Link { id, src, dst, spec }
    }

    /// This link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Sending endpoint.
    pub fn src(&self) -> NpuId {
        self.src
    }

    /// Receiving endpoint.
    pub fn dst(&self) -> NpuId {
        self.dst
    }

    /// Cost parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Transmission cost of `size` bytes over this link.
    pub fn cost(&self, size: ByteSize) -> Time {
        self.spec.cost(size)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({})",
            self.id, self.src, self.dst, self.spec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_50gbps() -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
    }

    #[test]
    fn alpha_beta_cost() {
        let spec = spec_50gbps();
        // 1 MB over 50 GB/s = 20 us serialization + 0.5 us latency.
        assert_eq!(spec.cost(ByteSize::mb(1)), Time::from_micros(20.5));
        // Zero bytes costs exactly alpha.
        assert_eq!(spec.cost(ByteSize::ZERO), Time::from_micros(0.5));
    }

    #[test]
    fn fig12_heterogeneous_costs() {
        // Paper Fig. 12(b): 1 MB chunk.
        let fast = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(100.0));
        let slow = LinkSpec::new(Time::from_micros(1.0), Bandwidth::gbps(70.0));
        // 0.5 + 1e6/100e9*1e12 ps/1e6 = 0.5us + 10us.
        assert_eq!(fast.cost(ByteSize::mb(1)), Time::from_micros(10.5));
        // 1.0us + 14.2857us ≈ 15.2857us — the paper prints 14.95/10.27 µs
        // because it divides 1 MiB by decimal GB/s; we stay strictly decimal.
        let cost = slow.cost(ByteSize::mb(1));
        assert!((cost.as_micros_f64() - 15.2857).abs() < 0.01, "{cost}");
    }

    #[test]
    fn switch_unwinding_shares_bandwidth() {
        // Paper Fig. 13: degree-d unwinding divides bandwidth by d.
        let base = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(120.0));
        assert_eq!(base.share_bandwidth(1).bandwidth().as_gbps(), 120.0);
        assert_eq!(base.share_bandwidth(2).bandwidth().as_gbps(), 60.0);
        assert_eq!(base.share_bandwidth(3).bandwidth().as_gbps(), 40.0);
        assert_eq!(base.share_bandwidth(3).alpha(), base.alpha());
    }

    #[test]
    fn link_accessors() {
        let link = Link::new(LinkId::new(0), NpuId::new(1), NpuId::new(2), spec_50gbps());
        assert_eq!(link.src(), NpuId::new(1));
        assert_eq!(link.dst(), NpuId::new(2));
        assert_eq!(link.cost(ByteSize::ZERO), Time::from_micros(0.5));
        let s = format!("{link}");
        assert!(s.contains("NPU1 -> NPU2"), "{s}");
    }
}
