//! A minimal blocking client for the line-delimited protocol, used by
//! `tacos serve-bench`, `tacos chaos`, the integration tests, and
//! scripting — including [`Client::call_with_retry`], which honors the
//! daemon's `retry_after_ms` backpressure hints.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tacos_report::Json;

/// One connection to a `tacos serve` daemon.
pub struct Client {
    addr: String,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Backoff settings for [`Client::call_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt; 0 disables retrying.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (before jitter).
    pub base: Duration,
    /// Ceiling on any single backoff delay.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): exponential
    /// from `base`, raised to at least the server's `retry_after_ms`
    /// hint when one was given, capped at `max`, plus up to 25% jitter
    /// so a rejected burst does not re-arrive as a synchronized burst.
    fn delay(&self, attempt: u32, server_hint_ms: Option<u64>, jitter_seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .max(Duration::from_millis(server_hint_ms.unwrap_or(0)))
            .min(self.max);
        // xorshift on the caller-supplied seed: cheap, dependency-free,
        // and good enough to decorrelate clients.
        let mut x = jitter_seed | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let quarter_ns = exp.as_nanos() as u64 / 4;
        let jitter = if quarter_ns == 0 { 0 } else { x % quarter_ns };
        exp + Duration::from_nanos(jitter)
    }
}

/// The result of [`Client::call_with_retry`]: the final response plus
/// how many retries it took to get it.
#[derive(Debug)]
pub struct RetriedCall {
    /// The final response (which may still be `rejected` if retries ran
    /// out).
    pub response: Json,
    /// Retries performed after the first attempt.
    pub retries: u32,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> io::Result<Client> {
        let addr_text = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            addr: addr_text,
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Connects, retrying for up to `wait` while the daemon is still
    /// binding its socket (CI starts the daemon in the background).
    pub fn connect_with_retry(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sends one request line and returns the raw response line.
    pub fn call_raw(&mut self, request: &str) -> io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        if !request.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line)
    }

    /// Sends one request line and parses the JSON response.
    pub fn call(&mut self, request: &str) -> io::Result<Json> {
        let line = self.call_raw(request)?;
        Json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// One `stats` round trip: the daemon's counter snapshot (requests,
    /// cache hits, warm-cache residency and evictions, ...) as JSON.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.call(r#"{"op":"stats"}"#)
    }

    /// Like [`Client::call`], but retries `rejected` responses with
    /// jittered exponential backoff honoring the daemon's
    /// `retry_after_ms` hint, and reconnects once per attempt on I/O
    /// errors (the daemon closes connections it rejects at the cap).
    ///
    /// Returns the final response — still `rejected` when the budget is
    /// exhausted against a persistently-full daemon — and the number of
    /// retries spent. Non-`rejected` responses and non-I/O failures
    /// return immediately.
    pub fn call_with_retry(
        &mut self,
        request: &str,
        policy: &RetryPolicy,
    ) -> io::Result<RetriedCall> {
        for attempt in 0..=policy.max_retries {
            match self.call(request) {
                Ok(response) => {
                    let rejected =
                        response.get("status").and_then(Json::as_str) == Some("rejected");
                    if !rejected || attempt == policy.max_retries {
                        return Ok(RetriedCall {
                            response,
                            retries: attempt,
                        });
                    }
                    let hint = response.get("retry_after_ms").and_then(Json::as_u64);
                    std::thread::sleep(policy.delay(attempt, hint, jitter_seed(attempt)));
                }
                Err(e) => {
                    if attempt == policy.max_retries {
                        return Err(e);
                    }
                    std::thread::sleep(policy.delay(attempt, None, jitter_seed(attempt)));
                    // The daemon may have closed this connection
                    // (connection cap, oversized line): reconnect.
                    if let Ok(fresh) = Client::connect(&self.addr) {
                        *self = fresh;
                    }
                }
            }
        }
        unreachable!("the loop returns on its final attempt"); // lint: allow(panic, "loop structure returns on attempt == max; provable locally")
    }
}

/// A per-call jitter seed from the wall clock's sub-second nanos — not
/// cryptographic, just enough to decorrelate concurrent clients.
fn jitter_seed(attempt: u32) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(1);
    nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt)
}
