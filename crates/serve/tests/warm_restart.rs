//! Warm-cache persistence round-trip: persist on stop, reload on start,
//! re-serve with zero resyntheses — and reject stale or corrupted
//! snapshots with a cold start instead of a panic.

use std::path::{Path, PathBuf};
use std::time::Duration;

use tacos_core::{WarmCache, WarmLimits};
use tacos_report::Json;
use tacos_serve::{Client, Daemon, DaemonConfig, SNAPSHOT_FILE};

const REQUEST: &str = r#"{"topology":"mesh:2x2","collective":"all-gather","size":"1MB"}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tacos-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon_at(cache_dir: &Path) -> tacos_serve::DaemonHandle {
    Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache_dir.to_path_buf()),
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("daemon starts")
}

fn call(handle: &tacos_serve::DaemonHandle, request: &str) -> Json {
    let mut client = Client::connect_with_retry(&handle.addr().to_string(), Duration::from_secs(5))
        .expect("connect");
    client.call(request).expect("response")
}

#[test]
fn a_restarted_daemon_serves_from_the_persisted_cache() {
    let cache_dir = temp_dir("roundtrip");

    // Cold daemon: the first request synthesizes.
    let first = daemon_at(&cache_dir);
    let response = call(&first, REQUEST);
    assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        response.get("cache_hit").and_then(Json::as_bool),
        Some(false)
    );
    let cold_time = response.get("collective_time_ps").and_then(Json::as_u64);
    assert_eq!(first.stats().synthesized, 1);
    let persisted = first.stop().expect("clean stop");
    assert!(persisted >= 1, "stop should persist the warm entry");
    assert!(cache_dir.join(SNAPSHOT_FILE).exists());

    // Warm restart: the same request is a cache hit, zero resyntheses,
    // identical answer.
    let second = daemon_at(&cache_dir);
    let response = call(&second, REQUEST);
    assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        response.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        response.get("collective_time_ps").and_then(Json::as_u64),
        cold_time
    );
    let stats = second.stats();
    assert_eq!(stats.synthesized, 0, "warm restart must not resynthesize");
    assert_eq!(stats.cache_hits, 1);
    second.stop().expect("clean stop");

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn checkpoint_persists_without_stopping() {
    let cache_dir = temp_dir("checkpoint");
    let daemon = daemon_at(&cache_dir);
    call(&daemon, REQUEST);
    let response = call(&daemon, r#"{"op":"checkpoint"}"#);
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("checkpointed")
    );
    assert_eq!(response.get("entries").and_then(Json::as_u64), Some(1));
    assert!(cache_dir.join(SNAPSHOT_FILE).exists());
    daemon.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn a_capped_restart_trims_the_snapshot_to_the_resident_set() {
    let cache_dir = temp_dir("capped-restart");

    // Warm three distinct keys unbounded; stop persists all three.
    let unbounded = daemon_at(&cache_dir);
    for seed in 1..=3u64 {
        let request = format!(
            r#"{{"topology":"mesh:2x2","collective":"all-gather","size":"1MB","seed":{seed}}}"#
        );
        let response = call(&unbounded, &request);
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    }
    assert_eq!(unbounded.stop().expect("clean stop"), 3);

    // Restart under a one-entry cap: the reload trims to the cap and
    // counts the trimmed entries as evictions.
    let capped = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache_dir.clone()),
        warm_limits: WarmLimits {
            max_entries: 1,
            max_bytes: 0,
        },
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    let stats = capped.stats();
    assert_eq!(stats.warm_entries, 1, "{stats:?}");
    assert_eq!(stats.evictions, 2, "reload must trim to the cap: {stats:?}");
    assert!(stats.resident_bytes > 0, "{stats:?}");

    // Stopping writes only the resident set, which reloads clean.
    assert_eq!(capped.stop().expect("clean stop"), 1);
    let report = WarmCache::load_from(cache_dir.join(SNAPSHOT_FILE)).expect("snapshot parses");
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.entries_loaded, 1);
    assert_eq!(report.cache.len(), 1);

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn startup_sweeps_stale_checkpoint_temp_files() {
    let cache_dir = temp_dir("debris");
    std::fs::create_dir_all(&cache_dir).unwrap();
    // Debris a crashed checkpoint would leave behind: the atomic-rename
    // temp files named warm.tmp.<pid>.<seq>.
    for name in ["warm.tmp.1234.0", "warm.tmp.1234.7"] {
        std::fs::write(cache_dir.join(name), "torn half-written snapshot").unwrap();
    }

    let daemon = daemon_at(&cache_dir);
    call(&daemon, REQUEST);
    daemon.stop().expect("clean stop");

    let leftovers: Vec<String> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("warm.tmp."))
        .collect();
    assert!(leftovers.is_empty(), "debris must be swept: {leftovers:?}");
    assert!(cache_dir.join(SNAPSHOT_FILE).exists());

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn corrupted_and_stale_snapshots_cold_start_instead_of_panicking() {
    for (tag, contents) in [
        ("corrupt", "not a snapshot at all\n".to_string()),
        ("truncated", "tacos-warm-cache v1\nmatcher".to_string()),
        (
            // A snapshot from a hypothetical future matcher: structurally
            // valid, but its schedules would be stale for this build.
            "stale",
            "tacos-warm-cache v1\nmatcher 999999\nentries 0\n".to_string(),
        ),
    ] {
        let cache_dir = temp_dir(tag);
        std::fs::create_dir_all(&cache_dir).unwrap();
        std::fs::write(cache_dir.join(SNAPSHOT_FILE), contents).unwrap();

        // Spawn must succeed (cold start, notice on stderr) and the
        // daemon must serve normally, resynthesizing from scratch.
        let daemon = daemon_at(&cache_dir);
        let response = call(&daemon, REQUEST);
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("ok"),
            "{tag}: {response:?}"
        );
        assert_eq!(
            response.get("cache_hit").and_then(Json::as_bool),
            Some(false),
            "{tag}: a bad snapshot must not produce cache hits"
        );
        assert_eq!(daemon.stats().synthesized, 1, "{tag}");
        // Stopping overwrites the bad snapshot with a valid one.
        assert!(daemon.stop().expect("clean stop") >= 1, "{tag}");
        let reloaded = daemon_at(&cache_dir);
        let response = call(&reloaded, REQUEST);
        assert_eq!(
            response.get("cache_hit").and_then(Json::as_bool),
            Some(true),
            "{tag}: the rewritten snapshot must load"
        );
        reloaded.stop().expect("clean stop");
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}
