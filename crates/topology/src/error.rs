//! Error type for topology construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a [`Topology`].
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A topology must contain at least one NPU.
    Empty,
    /// An NPU id referenced a node outside `0..num_npus`.
    NpuOutOfRange {
        /// The offending NPU index.
        npu: usize,
        /// Number of NPUs in the topology.
        num_npus: usize,
    },
    /// Self-loop links are not allowed.
    SelfLoop {
        /// The NPU that was both source and destination.
        npu: usize,
    },
    /// A dimension size was invalid (zero, or sizes do not multiply to the
    /// NPU count).
    BadDimensions {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The requested canonical topology requires a constraint the arguments
    /// violate (e.g. RHD needs a power-of-two NPU count).
    UnsupportedShape {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The topology is not strongly connected, so a collective cannot
    /// complete on it.
    NotConnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology must contain at least one NPU"),
            TopologyError::NpuOutOfRange { npu, num_npus } => {
                write!(f, "NPU index {npu} out of range for {num_npus} NPUs")
            }
            TopologyError::SelfLoop { npu } => {
                write!(f, "self-loop link on NPU {npu} is not allowed")
            }
            TopologyError::BadDimensions { reason } => {
                write!(f, "invalid dimensions: {reason}")
            }
            TopologyError::UnsupportedShape { reason } => {
                write!(f, "unsupported topology shape: {reason}")
            }
            TopologyError::NotConnected => {
                write!(f, "topology is not strongly connected")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TopologyError::Empty.to_string(),
            "topology must contain at least one NPU"
        );
        assert_eq!(
            TopologyError::NpuOutOfRange {
                npu: 9,
                num_npus: 4
            }
            .to_string(),
            "NPU index 9 out of range for 4 NPUs"
        );
        assert!(TopologyError::SelfLoop { npu: 1 }
            .to_string()
            .contains("self-loop"));
        assert!(TopologyError::NotConnected
            .to_string()
            .contains("strongly connected"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TopologyError>();
    }
}
