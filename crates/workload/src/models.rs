//! The training workloads evaluated end-to-end in the paper (§VI-D):
//! GNMT, ResNet-50, Turing-NLG, and MSFT-1T.
//!
//! Per-iteration compute times and communication volumes are analytical
//! (the paper's own evaluation is simulator-based): gradient sizes follow
//! the published parameter counts at FP16, and compute times assume an
//! A100-class NPU sustaining ~150 TFLOP/s on `6 · params · tokens` FLOPs
//! per iteration (forward ≈ ⅓, backward ≈ ⅔). Absolute seconds do not
//! matter for Figs. 20–21 — every result is normalized — but the
//! compute-to-communication *ratio* per model shapes the bars, so the
//! constants are documented here and in DESIGN.md.

use tacos_topology::{ByteSize, Time};

/// One distributed training workload: per-iteration compute and exposed
/// communication volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: &'static str,
    /// Weight-gradient All-Reduce payload per NPU (data parallelism).
    weight_grad: ByteSize,
    /// Input-gradient (activation) All-Reduce payload per NPU, for hybrid
    /// parallel models (MSFT-1T in Fig. 21); `None` for pure DP.
    input_grad: Option<ByteSize>,
    forward: Time,
    backward: Time,
}

impl Workload {
    /// GNMT (Wu et al. '16): ~278 M parameters. Paper Fig. 20 trains it on
    /// a 64-NPU 3D-RFS.
    pub fn gnmt() -> Workload {
        Workload {
            name: "GNMT",
            // 278M params x 2 B (FP16 gradients).
            weight_grad: ByteSize::mb(556),
            input_grad: None,
            forward: Time::from_millis(14.0),
            backward: Time::from_millis(28.0),
        }
    }

    /// ResNet-50 (He et al. '16): ~25.5 M parameters. Figs. 20 and 21.
    pub fn resnet50() -> Workload {
        Workload {
            name: "ResNet-50",
            weight_grad: ByteSize::mb(51),
            input_grad: None,
            forward: Time::from_millis(4.0),
            backward: Time::from_millis(8.0),
        }
    }

    /// Turing-NLG (Microsoft '20): 17.2 B parameters. Fig. 20 trains it on
    /// a 256-NPU 3D-RFS; with model sharding each DP replica reduces a
    /// per-NPU shard of the gradients.
    pub fn turing_nlg() -> Workload {
        Workload {
            name: "Turing-NLG",
            // 17.2B params / 32-way model shard x 2 B.
            weight_grad: ByteSize::gb(1),
            input_grad: None,
            forward: Time::from_millis(90.0),
            backward: Time::from_millis(180.0),
        }
    }

    /// MSFT-1T (Rajbhandari et al. '20 scale target): 1 T parameters under
    /// hybrid parallelism — both weight-gradient and input-gradient
    /// collectives are exposed (paper Fig. 21's four-way breakdown).
    pub fn msft_1t() -> Workload {
        Workload {
            name: "MSFT-1T",
            // 1T params / 1024 NPUs x 2 B per-NPU shard.
            weight_grad: ByteSize::gb(2),
            input_grad: Some(ByteSize::mb(512)),
            forward: Time::from_millis(120.0),
            backward: Time::from_millis(240.0),
        }
    }

    /// The model-selection tokens accepted by [`Workload::parse`] (the
    /// scenario engine's `[workload] model` axis vocabulary).
    pub const TOKENS: [&'static str; 4] = ["gnmt", "resnet50", "turing_nlg", "msft_1t"];

    /// Parses a model-selection token (`gnmt`, `resnet50`, `turing_nlg`,
    /// `msft_1t`; the printed figure names are accepted too).
    ///
    /// # Errors
    /// Returns a message listing the known tokens.
    pub fn parse(token: &str) -> Result<Workload, String> {
        match token.to_ascii_lowercase().as_str() {
            "gnmt" => Ok(Workload::gnmt()),
            "resnet50" | "resnet-50" => Ok(Workload::resnet50()),
            "turing_nlg" | "turing-nlg" => Ok(Workload::turing_nlg()),
            "msft_1t" | "msft-1t" => Ok(Workload::msft_1t()),
            other => Err(format!(
                "unknown workload model '{other}' (expected one of: {})",
                Workload::TOKENS.join(", ")
            )),
        }
    }

    /// Model name as printed in the figures.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Weight-gradient All-Reduce payload per NPU.
    pub fn weight_grad(&self) -> ByteSize {
        self.weight_grad
    }

    /// Input-gradient All-Reduce payload per NPU, if the parallelization
    /// exposes one.
    pub fn input_grad(&self) -> Option<ByteSize> {
        self.input_grad
    }

    /// Forward-pass compute time per iteration.
    pub fn forward(&self) -> Time {
        self.forward
    }

    /// Backward-pass compute time per iteration.
    pub fn backward(&self) -> Time {
        self.backward
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_constants() {
        assert_eq!(Workload::gnmt().weight_grad(), ByteSize::mb(556));
        assert_eq!(Workload::resnet50().weight_grad(), ByteSize::mb(51));
        assert!(Workload::turing_nlg().forward() > Workload::resnet50().forward());
        assert!(Workload::msft_1t().input_grad().is_some());
        assert!(Workload::gnmt().input_grad().is_none());
    }

    #[test]
    fn backward_is_heavier_than_forward() {
        for w in [
            Workload::gnmt(),
            Workload::resnet50(),
            Workload::turing_nlg(),
            Workload::msft_1t(),
        ] {
            assert!(w.backward() > w.forward(), "{}", w.name());
        }
    }
}
