//! The single-flight guarantee, proven against a live daemon: N
//! concurrent identical requests cost exactly one synthesis.

use std::sync::Barrier;
use std::time::Duration;

use tacos_report::Json;
use tacos_serve::{Client, Daemon, DaemonConfig};

const CLIENTS: usize = 8;

#[test]
fn concurrent_identical_requests_run_one_synthesis() {
    let handle = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr().to_string();

    // A request slow enough that the waves of clients overlap its
    // synthesis window, identical for everyone.
    let request = r#"{"topology":"mesh:3x3","collective":"all-gather","size":"4MB","attempts":2}"#;

    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    let mut client =
                        Client::connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
                    barrier.wait();
                    client.call(request).expect("response")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let status = |r: &Json| r.get("status").and_then(Json::as_str).map(String::from);
    let flag = |r: &Json, key: &str| r.get(key).and_then(Json::as_bool) == Some(true);
    assert!(
        responses.iter().all(|r| status(r).as_deref() == Some("ok")),
        "all {CLIENTS} clients should get ok responses: {responses:?}"
    );
    let hits = responses.iter().filter(|r| flag(r, "cache_hit")).count();
    let deduplicated = responses.iter().filter(|r| flag(r, "deduplicated")).count();
    // One client led the synthesis; everyone else either piggybacked on
    // the in-flight one or (arriving after completion) hit the warm cache.
    assert_eq!(
        hits + deduplicated,
        CLIENTS - 1,
        "hits={hits} deduplicated={deduplicated}"
    );

    let stats = handle.stats();
    assert_eq!(
        stats.synthesized, 1,
        "exactly one synthesis must have run: {stats:?}"
    );
    assert_eq!(stats.errors, 0, "{stats:?}");

    // And a late arrival is a pure warm hit.
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
    let late = client.call(request).expect("response");
    assert_eq!(late.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(handle.stats().synthesized, 1);

    handle.stop().expect("clean stop");
}
