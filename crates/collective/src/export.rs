//! Exporting synthesized algorithms for consumption by CCLs.
//!
//! The paper's output is "a topology-aware collective algorithm (i.e.,
//! static path of each chunk), which can then be utilized by CCLs in lieu
//! of the predefined topology-unaware basic algorithms" (Fig. 3). This
//! module serializes a [`CollectiveAlgorithm`] into:
//!
//! * [`to_json`] — a complete, machine-readable transfer dump;
//! * [`to_msccl_xml`] — an MSCCL-interpreter-style XML skeleton (one
//!   `<gpu>` per NPU, one `<tb>` (threadblock) per peer, `<step>`s in
//!   dependency order), close enough in shape to feed a converter for
//!   MSCCL/MSCCL++-style runtimes.
//!
//! Both encoders are hand-rolled: `serde_json` is not in the allowed
//! offline crate set (DESIGN.md §2).

use std::fmt::Write as _;

use crate::algorithm::{CollectiveAlgorithm, Transfer, TransferKind};

/// Serializes the full algorithm as compact JSON.
///
/// Schema: `{name, num_npus, chunk_size, total_size, planned_time_ps?,
/// transfers: [{chunk, count, src, dst, kind, link?, start_ps?,
/// duration_ps?, deps: [..]}]}`.
pub fn to_json(algo: &CollectiveAlgorithm) -> String {
    let mut out = String::with_capacity(algo.len() * 96 + 256);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"num_npus\":{},\"chunk_size\":{},\"total_size\":{}",
        escape(algo.name()),
        algo.num_npus(),
        algo.chunk_size().as_u64(),
        algo.total_size().as_u64()
    );
    if let Some(t) = algo.planned_time() {
        let _ = write!(out, ",\"planned_time_ps\":{}", t.as_ps());
    }
    out.push_str(",\"transfers\":[");
    for (i, t) in algo.transfers().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"chunk\":{},\"count\":{},\"src\":{},\"dst\":{},\"kind\":\"{}\"",
            t.chunk().raw(),
            t.count(),
            t.src().raw(),
            t.dst().raw(),
            kind_name(t.kind()),
        );
        if let Some(l) = t.link() {
            let _ = write!(out, ",\"link\":{}", l.raw());
        }
        if let Some(s) = t.start() {
            let _ = write!(out, ",\"start_ps\":{}", s.as_ps());
        }
        if let Some(d) = t.duration() {
            let _ = write!(out, ",\"duration_ps\":{}", d.as_ps());
        }
        out.push_str(",\"deps\":[");
        for (j, dep) in t.deps().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", dep.index());
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Serializes the algorithm as MSCCL-interpreter-style XML.
///
/// Structure: `<algo>` → one `<gpu>` per NPU → one `<tb>` (threadblock)
/// per (peer, direction) → `<step>`s ordered by schedule. Each send step
/// names the chunk and whether the receiver reduces (`rrc`) or copies
/// (`r`) — the subset of MSCCL's vocabulary needed to express static
/// chunk routes.
pub fn to_msccl_xml(algo: &CollectiveAlgorithm) -> String {
    let n = algo.num_npus();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<algo name=\"{}\" nchunksperloop=\"{}\" nchannels=\"1\" proto=\"Simple\" ngpus=\"{}\">",
        escape(algo.name()),
        algo.transfers()
            .iter()
            .map(|t| t.chunk().raw() + t.count())
            .max()
            .unwrap_or(0),
        n
    );
    for gpu in 0..n {
        let _ = writeln!(out, "  <gpu id=\"{gpu}\">");
        // One threadblock per peer this GPU sends to, one per peer it
        // receives from (MSCCL's send/recv separation).
        let mut sends: Vec<(usize, Vec<(usize, &Transfer)>)> = Vec::new();
        let mut recvs: Vec<(usize, Vec<(usize, &Transfer)>)> = Vec::new();
        for (i, t) in algo.transfers().iter().enumerate() {
            if t.src().index() == gpu {
                match sends.iter_mut().find(|(p, _)| *p == t.dst().index()) {
                    Some((_, list)) => list.push((i, t)),
                    None => sends.push((t.dst().index(), vec![(i, t)])),
                }
            }
            if t.dst().index() == gpu {
                match recvs.iter_mut().find(|(p, _)| *p == t.src().index()) {
                    Some((_, list)) => list.push((i, t)),
                    None => recvs.push((t.src().index(), vec![(i, t)])),
                }
            }
        }
        let mut tb = 0usize;
        for (peer, steps) in &sends {
            let _ = writeln!(
                out,
                "    <tb id=\"{tb}\" send=\"{peer}\" recv=\"-1\" chan=\"0\">"
            );
            for (s, (id, t)) in steps.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "      <step s=\"{s}\" type=\"s\" srcbuf=\"o\" srcoff=\"{}\" cnt=\"{}\" \
                     depid=\"{}\" hasdep=\"0\"/>",
                    t.chunk().raw(),
                    t.count(),
                    id
                );
            }
            let _ = writeln!(out, "    </tb>");
            tb += 1;
        }
        for (peer, steps) in &recvs {
            let _ = writeln!(
                out,
                "    <tb id=\"{tb}\" send=\"-1\" recv=\"{peer}\" chan=\"0\">"
            );
            for (s, (id, t)) in steps.iter().enumerate() {
                let ty = match t.kind() {
                    TransferKind::Copy => "r",
                    TransferKind::Reduce => "rrc",
                };
                let _ = writeln!(
                    out,
                    "      <step s=\"{s}\" type=\"{ty}\" dstbuf=\"o\" dstoff=\"{}\" cnt=\"{}\" \
                     depid=\"{}\" hasdep=\"0\"/>",
                    t.chunk().raw(),
                    t.count(),
                    id
                );
            }
            let _ = writeln!(out, "    </tb>");
            tb += 1;
        }
        let _ = writeln!(out, "  </gpu>");
    }
    out.push_str("</algo>\n");
    out
}

/// Serializes the algorithm into the compact line-based `.tacos` format —
/// the round-trippable on-disk representation used to cache synthesized
/// schedules between runs (deserialize with [`from_compact`]).
///
/// Format: a header line
/// `tacos-algo v1 <name> <num_npus> <chunk_size> <total_size> <planned_ps|->`
/// followed by one line per transfer:
/// `<chunk> <count> <src> <dst> <C|R> <link|-> <start_ps|-> <dur_ps|-> <dep,dep,...|->`.
pub fn to_compact(algo: &CollectiveAlgorithm) -> String {
    let mut out = String::with_capacity(algo.len() * 48 + 64);
    let _ = writeln!(
        out,
        "tacos-algo v1 {} {} {} {} {}",
        algo.name().replace(' ', "_"),
        algo.num_npus(),
        algo.chunk_size().as_u64(),
        algo.total_size().as_u64(),
        algo.planned_time()
            .map_or("-".to_string(), |t| t.as_ps().to_string()),
    );
    for t in algo.transfers() {
        let deps = if t.deps().is_empty() {
            "-".to_string()
        } else {
            t.deps()
                .iter()
                .map(|d| d.index().to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {} {}",
            t.chunk().raw(),
            t.count(),
            t.src().raw(),
            t.dst().raw(),
            match t.kind() {
                TransferKind::Copy => "C",
                TransferKind::Reduce => "R",
            },
            t.link().map_or("-".to_string(), |l| l.raw().to_string()),
            t.start().map_or("-".to_string(), |s| s.as_ps().to_string()),
            t.duration()
                .map_or("-".to_string(), |d| d.as_ps().to_string()),
            deps,
        );
    }
    out
}

/// Parses the compact format produced by [`to_compact`].
///
/// # Errors
/// Returns a human-readable description of the first malformed line.
pub fn from_compact(text: &str) -> Result<CollectiveAlgorithm, String> {
    use crate::algorithm::{AlgorithmBuilder, TransferId};
    use crate::ChunkId;
    use tacos_topology::{ByteSize, LinkId, NpuId, Time};

    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty input")?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() != 7 || h[0] != "tacos-algo" || h[1] != "v1" {
        return Err(format!("bad header: '{header}'"));
    }
    let num = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|e| format!("bad {what} '{s}': {e}"))
    };
    let opt = |s: &str, what: &str| -> Result<Option<u64>, String> {
        if s == "-" {
            Ok(None)
        } else {
            num(s, what).map(Some)
        }
    };
    let num_npus = num(h[3], "num_npus")? as usize;
    let mut b = AlgorithmBuilder::new(
        h[2],
        num_npus,
        ByteSize::bytes(num(h[4], "chunk_size")?),
        ByteSize::bytes(num(h[5], "total_size")?),
    );
    let planned = opt(h[6], "planned_time")?;

    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 9 {
            return Err(format!(
                "line {}: expected 9 fields, got {}",
                lineno + 1,
                f.len()
            ));
        }
        let chunk = ChunkId::new(num(f[0], "chunk")? as u32);
        let count = num(f[1], "count")? as u32;
        let src = NpuId::new(num(f[2], "src")? as u32);
        let dst = NpuId::new(num(f[3], "dst")? as u32);
        let kind = match f[4] {
            "C" => TransferKind::Copy,
            "R" => TransferKind::Reduce,
            other => return Err(format!("line {}: bad kind '{other}'", lineno + 1)),
        };
        let link = opt(f[5], "link")?.map(|l| LinkId::new(l as u32));
        let start = opt(f[6], "start")?.map(Time::from_ps);
        let duration = opt(f[7], "duration")?.map(Time::from_ps);
        let deps: Vec<TransferId> = if f[8] == "-" {
            Vec::new()
        } else {
            f[8].split(',')
                .map(|d| num(d, "dep").map(|v| TransferId::new(v as u32)))
                .collect::<Result<_, _>>()?
        };
        match (link, start, duration) {
            (Some(link), Some(start), Some(duration)) => {
                b.push_scheduled(chunk, src, dst, kind, link, start, duration, deps);
            }
            (Some(link), None, None) => {
                b.push_on_link(chunk, count, src, dst, kind, link, deps);
            }
            (None, None, None) => {
                if count == 1 {
                    b.push(chunk, src, dst, kind, deps);
                } else {
                    b.push_counted(chunk, count, src, dst, kind, deps);
                }
            }
            _ => {
                return Err(format!(
                    "line {}: partial schedule (link/start/duration must come together)",
                    lineno + 1
                ))
            }
        }
    }
    if let Some(planned) = planned {
        b.planned_time(Time::from_ps(planned));
    }
    Ok(b.build())
}

fn kind_name(kind: TransferKind) -> &'static str {
    match kind {
        TransferKind::Copy => "copy",
        TransferKind::Reduce => "reduce",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AlgorithmBuilder;
    use crate::ChunkId;
    use tacos_topology::{ByteSize, LinkId, NpuId, Time};

    fn algo() -> CollectiveAlgorithm {
        let mut b = AlgorithmBuilder::new("unit", 3, ByteSize::mb(1), ByteSize::mb(3));
        let first = b.push_scheduled(
            ChunkId::new(0),
            NpuId::new(0),
            NpuId::new(1),
            TransferKind::Copy,
            LinkId::new(0),
            Time::ZERO,
            Time::from_ps(10),
            vec![],
        );
        b.push_scheduled(
            ChunkId::new(0),
            NpuId::new(1),
            NpuId::new(2),
            TransferKind::Reduce,
            LinkId::new(1),
            Time::from_ps(10),
            Time::from_ps(10),
            vec![first],
        );
        b.planned_time(Time::from_ps(20));
        b.build()
    }

    #[test]
    fn json_roundtrippable_shape() {
        let j = to_json(&algo());
        assert!(j.starts_with("{\"name\":\"unit\""));
        assert!(j.contains("\"planned_time_ps\":20"));
        assert!(j.contains("\"kind\":\"reduce\""));
        assert!(j.contains("\"deps\":[0]"));
        assert!(j.ends_with("]}"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn xml_structure() {
        let x = to_msccl_xml(&algo());
        assert!(x.starts_with("<algo name=\"unit\""));
        assert_eq!(x.matches("<gpu ").count(), 3);
        assert_eq!(x.matches("</gpu>").count(), 3);
        // GPU1 both receives (from 0) and sends (to 2).
        assert!(x.contains("send=\"2\""));
        assert!(x.contains("recv=\"0\""));
        // Reduce arrives as rrc.
        assert!(x.contains("type=\"rrc\""));
        assert!(x.ends_with("</algo>\n"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }

    #[test]
    fn compact_roundtrip_scheduled() {
        let a = algo();
        let text = to_compact(&a);
        let back = from_compact(&text).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn compact_roundtrip_dependency_driven() {
        let mut b = AlgorithmBuilder::new("dep algo", 4, ByteSize::kb(64), ByteSize::kb(256));
        let first = b.push(
            ChunkId::new(1),
            NpuId::new(0),
            NpuId::new(1),
            TransferKind::Copy,
            vec![],
        );
        b.push_counted(
            ChunkId::new(2),
            8,
            NpuId::new(1),
            NpuId::new(3),
            TransferKind::Reduce,
            vec![first],
        );
        b.push_on_link(
            ChunkId::new(3),
            2,
            NpuId::new(2),
            NpuId::new(0),
            TransferKind::Copy,
            LinkId::new(5),
            vec![],
        );
        let a = b.build();
        let back = from_compact(&to_compact(&a)).unwrap();
        // Name spaces are flattened to underscores; everything else equal.
        assert_eq!(back.name(), "dep_algo");
        assert_eq!(back.len(), a.len());
        for (x, y) in a.transfers().iter().zip(back.transfers()) {
            assert_eq!(x.chunk(), y.chunk());
            assert_eq!(x.count(), y.count());
            assert_eq!(x.src(), y.src());
            assert_eq!(x.dst(), y.dst());
            assert_eq!(x.kind(), y.kind());
            assert_eq!(x.link(), y.link());
            assert_eq!(x.deps(), y.deps());
        }
    }

    #[test]
    fn compact_rejects_malformed() {
        assert!(from_compact("").is_err());
        assert!(from_compact("nope v1 x 2 1 1 -").is_err());
        assert!(from_compact("tacos-algo v1 a 2 1 1 -\n1 1 0 1 X - - - -").is_err());
        assert!(from_compact("tacos-algo v1 a 2 1 1 -\n1 1 0 1 C 0 5 - -").is_err());
        assert!(from_compact("tacos-algo v1 a 2 1 1 -\n1 1 0 1 C").is_err());
    }
}
