//! Descriptions of collective communications: who starts with which chunks
//! (precondition) and who must end with which chunks (postcondition) —
//! paper §IV-C.

use tacos_topology::{ByteSize, NpuId};

use crate::chunk::{ChunkId, ChunkSet};
use crate::error::CollectiveError;
use crate::pattern::CollectivePattern;

/// A collective communication to synthesize or execute: a pattern, a
/// participant count, a payload size, and a chunking factor.
///
/// The payload (`total_size`) is the **full per-NPU buffer**: a "1 GB
/// All-Reduce" means every NPU holds a 1 GB gradient buffer. With `n` NPUs
/// and chunking factor `k`, owner-based patterns split the buffer into
/// `n·k` chunks (paper §II-A: chunking increases overlap).
///
/// ```
/// use tacos_collective::Collective;
/// use tacos_topology::ByteSize;
/// let coll = Collective::all_gather(4, ByteSize::mb(4))?;
/// assert_eq!(coll.num_chunks(), 4);
/// assert_eq!(coll.chunk_size(), ByteSize::mb(1));
/// // NPU 2 starts with chunk 2 and must end with all four chunks.
/// assert_eq!(coll.precondition(tacos_topology::NpuId::new(2)).len(), 1);
/// assert_eq!(coll.postcondition(tacos_topology::NpuId::new(2)).len(), 4);
/// # Ok::<(), tacos_collective::CollectiveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Collective {
    pattern: CollectivePattern,
    num_npus: usize,
    chunks_per_npu: usize,
    total_size: ByteSize,
    num_chunks: usize,
    chunk_size: ByteSize,
}

impl Collective {
    fn new(
        pattern: CollectivePattern,
        num_npus: usize,
        chunks_per_npu: usize,
        total_size: ByteSize,
    ) -> Result<Self, CollectiveError> {
        if num_npus < 2 {
            return Err(CollectiveError::TooFewNpus { num_npus });
        }
        if chunks_per_npu == 0 {
            return Err(CollectiveError::ZeroChunks);
        }
        if let Some(root) = pattern.root() {
            if root.index() >= num_npus {
                return Err(CollectiveError::RootOutOfRange {
                    root: root.index(),
                    num_npus,
                });
            }
        }
        let num_chunks = match pattern {
            CollectivePattern::Broadcast { .. } | CollectivePattern::Reduce { .. } => {
                chunks_per_npu
            }
            // Personalized exchange: one shard per (source, destination).
            CollectivePattern::AllToAll => num_npus * num_npus * chunks_per_npu,
            _ => num_npus * chunks_per_npu,
        };
        if total_size.as_u64() == 0 {
            return Err(CollectiveError::SizeNotDivisible {
                size: 0,
                chunks: num_chunks as u64,
            });
        }
        // Ceiling division: tiny collectives (1 KB over 128 NPUs, Fig. 2b)
        // still get non-empty, α-dominated chunks. For All-to-All the
        // per-NPU buffer holds one shard per peer, so a chunk is
        // S/(n·k) even though there are n²·k chunks in flight globally.
        let divisor = match pattern {
            CollectivePattern::AllToAll => (num_npus * chunks_per_npu) as u64,
            _ => num_chunks as u64,
        };
        let chunk_size = ByteSize::bytes(total_size.as_u64().div_ceil(divisor));
        Ok(Collective {
            pattern,
            num_npus,
            chunks_per_npu,
            total_size,
            num_chunks,
            chunk_size,
        })
    }

    /// An All-Gather over `num_npus` NPUs with chunking factor 1.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn all_gather(num_npus: usize, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::AllGather, num_npus, 1, size)
    }

    /// A Reduce-Scatter over `num_npus` NPUs with chunking factor 1.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn reduce_scatter(num_npus: usize, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::ReduceScatter, num_npus, 1, size)
    }

    /// An All-Reduce over `num_npus` NPUs with chunking factor 1.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn all_reduce(num_npus: usize, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::AllReduce, num_npus, 1, size)
    }

    /// A Broadcast from `root` with chunking factor 1 (the whole payload
    /// moves as one chunk).
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn broadcast(
        num_npus: usize,
        root: NpuId,
        size: ByteSize,
    ) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::Broadcast { root }, num_npus, 1, size)
    }

    /// A Reduce into `root` with chunking factor 1.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn reduce(num_npus: usize, root: NpuId, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::Reduce { root }, num_npus, 1, size)
    }

    /// An All-to-All (personalized exchange) over `num_npus` NPUs with
    /// chunking factor 1: NPU `i` starts with a distinct shard for every
    /// peer and ends with every peer's shard addressed to it.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn all_to_all(num_npus: usize, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::AllToAll, num_npus, 1, size)
    }

    /// A Gather of every NPU's shard into `root` with chunking factor 1.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn gather(num_npus: usize, root: NpuId, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::Gather { root }, num_npus, 1, size)
    }

    /// A Scatter of the root's shards to every NPU with chunking factor 1.
    ///
    /// # Errors
    /// See [`Collective::with_chunking`].
    pub fn scatter(num_npus: usize, root: NpuId, size: ByteSize) -> Result<Self, CollectiveError> {
        Self::new(CollectivePattern::Scatter { root }, num_npus, 1, size)
    }

    /// A collective with an explicit chunking factor `k`: owner-based
    /// patterns get `n·k` chunks, All-to-All `n²·k`, rooted patterns `k`.
    ///
    /// # Errors
    /// * [`CollectiveError::TooFewNpus`] for fewer than 2 participants.
    /// * [`CollectiveError::ZeroChunks`] if `k == 0`.
    /// * [`CollectiveError::RootOutOfRange`] for an invalid root.
    /// * [`CollectiveError::SizeNotDivisible`] for an empty payload.
    pub fn with_chunking(
        pattern: CollectivePattern,
        num_npus: usize,
        k: usize,
        size: ByteSize,
    ) -> Result<Self, CollectiveError> {
        Self::new(pattern, num_npus, k, size)
    }

    /// The communication pattern.
    pub fn pattern(&self) -> CollectivePattern {
        self.pattern
    }

    /// Number of participating NPUs.
    pub fn num_npus(&self) -> usize {
        self.num_npus
    }

    /// Chunking factor `k`.
    pub fn chunks_per_npu(&self) -> usize {
        self.chunks_per_npu
    }

    /// Total number of chunks in flight.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Size of each chunk.
    pub fn chunk_size(&self) -> ByteSize {
        self.chunk_size
    }

    /// The full per-NPU payload size.
    pub fn total_size(&self) -> ByteSize {
        self.total_size
    }

    /// The NPU that *owns* `chunk`: its initial holder for All-Gather, the
    /// reduction destination for Reduce-Scatter, the root for rooted
    /// patterns.
    pub fn owner(&self, chunk: ChunkId) -> NpuId {
        match self.pattern {
            CollectivePattern::Broadcast { root } | CollectivePattern::Reduce { root } => root,
            CollectivePattern::Scatter { root } => root,
            // All-to-All chunk (src·n + dst)·k + c originates at src.
            CollectivePattern::AllToAll => {
                NpuId::new((chunk.index() / (self.chunks_per_npu * self.num_npus)) as u32)
            }
            _ => NpuId::new((chunk.index() / self.chunks_per_npu) as u32),
        }
    }

    /// For All-to-All, the NPU a chunk is addressed to.
    ///
    /// # Panics
    /// Panics for other patterns.
    pub fn destination(&self, chunk: ChunkId) -> NpuId {
        assert_eq!(
            self.pattern,
            CollectivePattern::AllToAll,
            "destination() is only meaningful for All-to-All"
        );
        NpuId::new(((chunk.index() / self.chunks_per_npu) % self.num_npus) as u32)
    }

    /// The chunk ids owned by `npu` (empty for non-root NPUs of rooted
    /// patterns).
    pub fn chunks_of(&self, npu: NpuId) -> ChunkSet {
        let mut set = ChunkSet::new(self.num_chunks);
        match self.pattern {
            CollectivePattern::Broadcast { root }
            | CollectivePattern::Reduce { root }
            | CollectivePattern::Scatter { root } => {
                if npu == root {
                    set = ChunkSet::full(self.num_chunks);
                }
            }
            CollectivePattern::AllToAll => {
                let base = npu.index() * self.num_npus * self.chunks_per_npu;
                for c in base..base + self.num_npus * self.chunks_per_npu {
                    set.insert(ChunkId::new(c as u32));
                }
            }
            _ => {
                let base = npu.index() * self.chunks_per_npu;
                for c in base..base + self.chunks_per_npu {
                    set.insert(ChunkId::new(c as u32));
                }
            }
        }
        set
    }

    /// Chunks held by `npu` before the collective starts (paper Fig. 7,
    /// "precondition"). For combining patterns this is the set of *partials*
    /// the NPU contributes.
    pub fn precondition(&self, npu: NpuId) -> ChunkSet {
        match self.pattern {
            CollectivePattern::AllGather
            | CollectivePattern::Broadcast { .. }
            | CollectivePattern::AllToAll
            | CollectivePattern::Scatter { .. } => self.chunks_of(npu),
            CollectivePattern::Gather { .. } => {
                // Every NPU starts with its own shard (All-Gather layout).
                let mut set = ChunkSet::new(self.num_chunks);
                let base = npu.index() * self.chunks_per_npu;
                for c in base..base + self.chunks_per_npu {
                    set.insert(ChunkId::new(c as u32));
                }
                set
            }
            CollectivePattern::ReduceScatter
            | CollectivePattern::AllReduce
            | CollectivePattern::Reduce { .. } => ChunkSet::full(self.num_chunks),
        }
    }

    /// Chunks `npu` must hold when the collective completes (paper Fig. 7,
    /// "postcondition").
    pub fn postcondition(&self, npu: NpuId) -> ChunkSet {
        match self.pattern {
            CollectivePattern::AllGather | CollectivePattern::AllReduce => {
                ChunkSet::full(self.num_chunks)
            }
            CollectivePattern::ReduceScatter => self.chunks_of(npu),
            CollectivePattern::Broadcast { .. } => ChunkSet::full(self.num_chunks),
            CollectivePattern::Reduce { root } => {
                if npu == root {
                    ChunkSet::full(self.num_chunks)
                } else {
                    // Non-roots end with nothing: their partials are
                    // consumed by the reduction.
                    ChunkSet::new(self.num_chunks)
                }
            }
            CollectivePattern::Gather { root } => {
                if npu == root {
                    ChunkSet::full(self.num_chunks)
                } else {
                    // Non-roots keep (only) their own shard.
                    self.precondition(npu)
                }
            }
            CollectivePattern::AllToAll => {
                // NPU d must end with chunk (s·n + d)·k + c from every s.
                let mut set = self.precondition(npu);
                let k = self.chunks_per_npu;
                for s in 0..self.num_npus {
                    let base = (s * self.num_npus + npu.index()) * k;
                    for c in base..base + k {
                        set.insert(ChunkId::new(c as u32));
                    }
                }
                set
            }
            CollectivePattern::Scatter { root } => {
                if npu == root {
                    self.precondition(npu)
                } else {
                    let mut set = ChunkSet::new(self.num_chunks);
                    let base = npu.index() * self.chunks_per_npu;
                    for c in base..base + self.chunks_per_npu {
                        set.insert(ChunkId::new(c as u32));
                    }
                    set
                }
            }
        }
    }

    /// The non-combining dual used to synthesize combining collectives on
    /// the reversed topology (paper Fig. 11): Reduce-Scatter ↔ All-Gather,
    /// Reduce ↔ Broadcast.
    ///
    /// Returns `None` for All-Reduce (which decomposes into a
    /// Reduce-Scatter *phase* plus an All-Gather *phase* instead) and for
    /// patterns that are already non-combining.
    pub fn dual(&self) -> Option<Collective> {
        let dual_pattern = match self.pattern {
            CollectivePattern::ReduceScatter => CollectivePattern::AllGather,
            CollectivePattern::Reduce { root } => CollectivePattern::Broadcast { root },
            _ => return None,
        };
        Some(Collective {
            pattern: dual_pattern,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gather_conditions() {
        let c = Collective::all_gather(4, ByteSize::mb(4)).unwrap();
        assert_eq!(c.num_chunks(), 4);
        let pre = c.precondition(NpuId::new(1));
        assert_eq!(pre.len(), 1);
        assert!(pre.contains(ChunkId::new(1)));
        assert_eq!(c.postcondition(NpuId::new(1)).len(), 4);
        assert_eq!(c.owner(ChunkId::new(3)), NpuId::new(3));
    }

    #[test]
    fn chunked_all_gather() {
        let c = Collective::with_chunking(CollectivePattern::AllGather, 4, 4, ByteSize::mb(16))
            .unwrap();
        assert_eq!(c.num_chunks(), 16);
        assert_eq!(c.chunk_size(), ByteSize::mb(1));
        let pre = c.precondition(NpuId::new(2));
        assert_eq!(pre.len(), 4);
        assert!(pre.contains(ChunkId::new(8)));
        assert!(pre.contains(ChunkId::new(11)));
        assert_eq!(c.owner(ChunkId::new(11)), NpuId::new(2));
    }

    #[test]
    fn reduce_scatter_conditions() {
        let c = Collective::reduce_scatter(4, ByteSize::mb(4)).unwrap();
        assert_eq!(c.precondition(NpuId::new(0)).len(), 4);
        let post = c.postcondition(NpuId::new(2));
        assert_eq!(post.len(), 1);
        assert!(post.contains(ChunkId::new(2)));
    }

    #[test]
    fn all_reduce_conditions() {
        let c = Collective::all_reduce(4, ByteSize::mb(4)).unwrap();
        assert_eq!(c.precondition(NpuId::new(0)).len(), 4);
        assert_eq!(c.postcondition(NpuId::new(0)).len(), 4);
        assert!(c.pattern().is_combining());
    }

    #[test]
    fn broadcast_and_reduce_conditions() {
        let root = NpuId::new(1);
        let b = Collective::broadcast(4, root, ByteSize::mb(1)).unwrap();
        assert_eq!(b.num_chunks(), 1);
        assert_eq!(b.precondition(root).len(), 1);
        assert!(b.precondition(NpuId::new(0)).is_empty());
        assert_eq!(b.postcondition(NpuId::new(3)).len(), 1);

        let r = Collective::reduce(4, root, ByteSize::mb(1)).unwrap();
        assert_eq!(r.precondition(NpuId::new(0)).len(), 1);
        assert!(r.postcondition(NpuId::new(0)).is_empty());
        assert_eq!(r.postcondition(root).len(), 1);
        assert_eq!(r.owner(ChunkId::new(0)), root);
    }

    #[test]
    fn duals() {
        let rs = Collective::reduce_scatter(4, ByteSize::mb(4)).unwrap();
        let dual = rs.dual().unwrap();
        assert_eq!(dual.pattern(), CollectivePattern::AllGather);
        assert_eq!(dual.num_chunks(), 4);

        let red = Collective::reduce(4, NpuId::new(2), ByteSize::mb(1)).unwrap();
        assert_eq!(
            red.dual().unwrap().pattern(),
            CollectivePattern::Broadcast {
                root: NpuId::new(2)
            }
        );

        assert!(Collective::all_gather(4, ByteSize::mb(1))
            .unwrap()
            .dual()
            .is_none());
        assert!(Collective::all_reduce(4, ByteSize::mb(1))
            .unwrap()
            .dual()
            .is_none());
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Collective::all_gather(1, ByteSize::mb(1)),
            Err(CollectiveError::TooFewNpus { num_npus: 1 })
        ));
        assert!(matches!(
            Collective::with_chunking(CollectivePattern::AllGather, 4, 0, ByteSize::mb(1)),
            Err(CollectiveError::ZeroChunks)
        ));
        assert!(matches!(
            Collective::broadcast(4, NpuId::new(9), ByteSize::mb(1)),
            Err(CollectiveError::RootOutOfRange {
                root: 9,
                num_npus: 4
            })
        ));
        assert!(matches!(
            Collective::all_gather(4, ByteSize::ZERO),
            Err(CollectiveError::SizeNotDivisible { .. })
        ));
    }

    #[test]
    fn all_to_all_conditions() {
        let c = Collective::all_to_all(3, ByteSize::mb(9)).unwrap();
        assert_eq!(c.num_chunks(), 9);
        // Per-NPU buffer = 9 MB over 3 peers: 3 MB shards.
        assert_eq!(c.chunk_size(), ByteSize::mb(3));
        // NPU1 starts with chunks 3..6 (its shards for each peer).
        let pre = c.precondition(NpuId::new(1));
        assert_eq!(pre.len(), 3);
        assert!(pre.contains(ChunkId::new(3)));
        assert!(pre.contains(ChunkId::new(5)));
        // NPU1 must end with chunks addressed to it: 1, 4, 7 (+ its own).
        let post = c.postcondition(NpuId::new(1));
        assert!(post.contains(ChunkId::new(1)));
        assert!(post.contains(ChunkId::new(7)));
        assert_eq!(c.owner(ChunkId::new(7)), NpuId::new(2));
        assert_eq!(c.destination(ChunkId::new(7)), NpuId::new(1));
        assert!(c.dual().is_none());
    }

    #[test]
    fn gather_and_scatter_conditions() {
        let root = NpuId::new(0);
        let g = Collective::gather(4, root, ByteSize::mb(4)).unwrap();
        assert_eq!(g.num_chunks(), 4);
        assert_eq!(g.precondition(NpuId::new(2)).len(), 1);
        assert_eq!(g.postcondition(root).len(), 4);
        // Non-roots keep only their own shard.
        assert_eq!(g.postcondition(NpuId::new(2)).len(), 1);

        let s = Collective::scatter(4, root, ByteSize::mb(4)).unwrap();
        assert_eq!(s.precondition(root).len(), 4);
        assert!(s.precondition(NpuId::new(1)).is_empty());
        let post = s.postcondition(NpuId::new(3));
        assert_eq!(post.len(), 1);
        assert!(post.contains(ChunkId::new(3)));
        assert_eq!(s.owner(ChunkId::new(3)), root);
    }

    #[test]
    #[should_panic(expected = "only meaningful for All-to-All")]
    fn destination_panics_for_other_patterns() {
        let c = Collective::all_gather(4, ByteSize::mb(4)).unwrap();
        let _ = c.destination(ChunkId::new(0));
    }

    #[test]
    fn tiny_payload_gets_ceil_chunks() {
        // 1 KB over 128 NPUs (Fig. 2b): 8-byte chunks via ceiling division.
        let c = Collective::all_reduce(128, ByteSize::kb(1)).unwrap();
        assert_eq!(c.chunk_size(), ByteSize::bytes(8));
    }
}
