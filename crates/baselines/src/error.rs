//! Error type for baseline-algorithm generation.

use std::error::Error;
use std::fmt;

use tacos_collective::CollectiveError;

/// Errors produced while generating a baseline collective algorithm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// This baseline does not implement the requested collective pattern.
    UnsupportedPattern {
        /// The baseline's name.
        baseline: &'static str,
        /// The requested pattern's name.
        pattern: &'static str,
    },
    /// The baseline requires a power-of-two NPU count (RHD, paper §V-A).
    PowerOfTwoRequired {
        /// The offending NPU count.
        num_npus: usize,
    },
    /// The baseline requires hierarchical dimension metadata on the
    /// topology (BlueConnect, Themis).
    DimensionsRequired {
        /// The baseline's name.
        baseline: &'static str,
    },
    /// The baseline is specific to one topology (C-Cube needs DGX-1).
    WrongTopology {
        /// The baseline's name.
        baseline: &'static str,
        /// What it expected.
        expected: &'static str,
    },
    /// The collective's participant count differs from the topology's.
    NpuCountMismatch {
        /// NPUs in the topology.
        topology: usize,
        /// Participants in the collective.
        collective: usize,
    },
    /// An underlying collective-description error.
    Collective(CollectiveError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnsupportedPattern { baseline, pattern } => {
                write!(f, "baseline '{baseline}' does not implement {pattern}")
            }
            BaselineError::PowerOfTwoRequired { num_npus } => {
                write!(f, "RHD requires a power-of-two NPU count, got {num_npus}")
            }
            BaselineError::DimensionsRequired { baseline } => {
                write!(
                    f,
                    "baseline '{baseline}' requires a multi-dimensional topology"
                )
            }
            BaselineError::WrongTopology { baseline, expected } => {
                write!(f, "baseline '{baseline}' requires a {expected} topology")
            }
            BaselineError::NpuCountMismatch {
                topology,
                collective,
            } => write!(
                f,
                "topology has {topology} NPUs but the collective expects {collective}"
            ),
            BaselineError::Collective(e) => write!(f, "collective error: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Collective(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CollectiveError> for BaselineError {
    fn from(e: CollectiveError) -> Self {
        BaselineError::Collective(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BaselineError::UnsupportedPattern {
            baseline: "rhd",
            pattern: "All-Gather"
        }
        .to_string()
        .contains("does not implement"));
        assert!(BaselineError::PowerOfTwoRequired { num_npus: 6 }
            .to_string()
            .contains("power-of-two"));
        assert!(BaselineError::DimensionsRequired {
            baseline: "blueconnect"
        }
        .to_string()
        .contains("multi-dimensional"));
        assert!(BaselineError::WrongTopology {
            baseline: "ccube",
            expected: "DGX-1"
        }
        .to_string()
        .contains("DGX-1"));
    }
}
