//! `tacos-lint` — repo-native static analysis for the TACOS workspace.
//!
//! The registry-free environment rules out clippy plugins, so the
//! project owns its analyzer the same way it owns `Json::parse`: a
//! small comment/string-aware lexer ([`lexer`]), a per-file source
//! model ([`source`]), and four analyses on top:
//!
//! * [`locks`] — lock-order deadlock detection over `crates/core` +
//!   `crates/serve`, with call-graph propagation and cycle reporting.
//! * [`panics`] — panic-path audit of the designated serving modules.
//! * [`unsafety`] — every `unsafe` needs an adjacent `// SAFETY:`.
//! * [`design`] — dependency policy, durable-write pairing, and the
//!   `MATCHER_VERSION` matcher-kernel rule.
//!
//! Output is deterministic (path-sorted, stable messages) so CI diffs
//! are meaningful, and a committed count-ratcheted [`baseline`] lets
//! pre-existing findings pass while anything new fails.

use std::collections::BTreeMap;
use std::path::PathBuf;

pub mod baseline;
pub mod design;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod source;
pub mod unsafety;

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Lock-order graph: cycles and unregistered acquisitions.
    LockOrder,
    /// Panic-path audit in designated serving modules.
    Panic,
    /// `unsafe` without `// SAFETY:`.
    Unsafe,
    /// Dependency policy / durable writes / matcher fingerprint.
    Design,
}

impl Rule {
    /// Stable lowercase name used in reports, baselines, and
    /// `// lint: allow(<rule>, "..")` comments.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::Panic => "panic",
            Rule::Unsafe => "unsafe",
            Rule::Design => "design",
        }
    }
}

/// One finding, addressed by repo-relative path and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Producing rule.
    pub rule: Rule,
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Short stable token naming the construct (baseline fingerprint).
    pub token: String,
    /// Human-readable explanation, possibly multi-line (lock cycles).
    pub message: String,
}

/// Analyzer configuration. [`Options::new`] carries the real repo's
/// designated-file sets; fixture trees reuse them by mimicking the same
/// relative paths.
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Files under the panic-path audit (repo-relative).
    pub panic_files: Vec<String>,
    /// Files that must reference `MATCHER_VERSION` (repo-relative).
    pub matcher_kernel_files: Vec<String>,
    /// Path prefixes whose files form the lock-order domain.
    pub lock_domain_prefixes: Vec<String>,
}

impl Options {
    /// Options for scanning the workspace rooted at `root`.
    pub fn new(root: PathBuf) -> Options {
        Options {
            root,
            panic_files: vec![
                "crates/serve/src/daemon.rs".into(),
                "crates/serve/src/client.rs".into(),
                "crates/core/src/inflight.rs".into(),
                "crates/core/src/warm.rs".into(),
                "crates/core/src/parallel.rs".into(),
            ],
            matcher_kernel_files: vec![
                "crates/core/src/matching.rs".into(),
                "crates/core/src/cache.rs".into(),
                "crates/core/src/warm.rs".into(),
                "crates/collective/src/bits.rs".into(),
                "crates/collective/src/matrix.rs".into(),
            ],
            lock_domain_prefixes: vec!["crates/core/src/".into(), "crates/serve/src/".into()],
        }
    }
}

/// Counters surfaced by `tacos lint --stats`.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// `.rs` files scanned.
    pub files: usize,
    /// Manifests checked by the dependency rule.
    pub manifests: usize,
    /// Distinct locks in the lock-order registry.
    pub locks: usize,
    /// Mutex/RwLock acquisition sites in the lock domain.
    pub acquisitions: usize,
    /// Condvar wait/notify sites (coverage only).
    pub condvar_sites: usize,
    /// Distinct edges in the lock-order graph.
    pub edges: usize,
    /// Findings per rule (pre-baseline, post-suppression).
    pub by_rule: BTreeMap<&'static str, usize>,
}

/// The result of one lint run.
pub struct Outcome {
    /// New findings — nonzero means the gate fails.
    pub findings: Vec<Finding>,
    /// Findings absorbed by the committed baseline.
    pub baselined: usize,
    /// Findings suppressed by well-formed `// lint: allow(..)` comments.
    pub allowed: usize,
    /// Aggregate counters.
    pub stats: Stats,
}

/// Runs every analysis over the workspace at `opts.root`.
///
/// # Errors
/// Returns a message if the workspace cannot be read.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let (kept, allowed, stats) = collect(opts)?;
    let base_text = std::fs::read_to_string(opts.root.join("lint.baseline")).unwrap_or_default();
    let base = baseline::parse(&base_text);
    let (fresh, baselined) = baseline::apply(kept, &base);
    Ok(Outcome {
        findings: fresh,
        baselined,
        allowed,
        stats,
    })
}

/// Regenerates `lint.baseline` from the current findings and returns
/// how many it grandfathered.
///
/// # Errors
/// Returns a message if the workspace cannot be read or written.
pub fn fix_baseline(opts: &Options) -> Result<usize, String> {
    let (kept, _, _) = collect(opts)?;
    let text = baseline::render(&kept);
    std::fs::write(opts.root.join("lint.baseline"), text)
        .map_err(|e| format!("writing lint.baseline: {e}"))?;
    Ok(kept.len())
}

/// Runs the analyses and suppression pass, before any baseline is
/// applied. Returns (findings, allowed, stats).
fn collect(opts: &Options) -> Result<(Vec<Finding>, usize, Stats), String> {
    let files = source::load_workspace(&opts.root)?;
    let mut stats = Stats {
        files: files.len(),
        ..Stats::default()
    };
    let mut findings: Vec<Finding> = Vec::new();

    // Lock-order analysis over the configured domain.
    let domain: Vec<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            opts.lock_domain_prefixes
                .iter()
                .any(|p| f.rel.starts_with(p.as_str()))
        })
        .map(|(i, _)| i)
        .collect();
    let (lock_findings, lock_stats) = locks::analyze(&files, &domain);
    findings.extend(lock_findings);
    stats.locks = lock_stats.locks;
    stats.acquisitions = lock_stats.acquisitions;
    stats.condvar_sites = lock_stats.condvar_sites;
    stats.edges = lock_stats.edges;

    // Panic-path audit in the designated files.
    for f in &files {
        if opts.panic_files.iter().any(|p| p == &f.rel) {
            findings.extend(panics::analyze(f));
        }
    }

    // Unsafe hygiene and durable-write pairing, workspace-wide.
    for f in &files {
        findings.extend(unsafety::analyze(f));
        findings.extend(design::analyze_rename(f));
    }

    // Matcher-kernel fingerprint rule.
    findings.extend(design::analyze_matcher_version(
        &files,
        &opts.matcher_kernel_files,
    ));

    // Dependency policy over every manifest.
    for (rel, text) in load_manifests(opts) {
        stats.manifests += 1;
        findings.extend(design::analyze_manifest(&rel, &text));
    }

    // Suppressions: a well-formed same-line allow comment absorbs the
    // finding; a malformed one (no quoted reason) is itself a finding.
    // Lock cycles are never line-suppressible — only the baseline can
    // carry one, and only until it is fixed.
    let by_rel: BTreeMap<&str, &source::SourceFile> =
        files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut allowed = 0usize;
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        if f.token.starts_with("cycle:") {
            kept.push(f);
            continue;
        }
        match by_rel
            .get(f.file.as_str())
            .and_then(|src| src.allow_on_line(f.line, f.rule.as_str()))
        {
            Some(true) => allowed += 1,
            Some(false) => kept.push(Finding {
                token: "malformed-allow".into(),
                message: format!(
                    "malformed suppression for this {} finding — the grammar is \
                     `// lint: allow({}, \"<reason>\")`, reason required",
                    f.rule.as_str(),
                    f.rule.as_str()
                ),
                ..f
            }),
            None => kept.push(f),
        }
    }
    kept.sort();
    for f in &kept {
        *stats.by_rule.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    Ok((kept, allowed, stats))
}

/// Renders findings + summary in the stable report format.
pub fn render_report(outcome: &Outcome) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file,
            f.line,
            f.rule.as_str(),
            f.message
        ));
    }
    out.push_str(&format!(
        "tacos-lint: {} finding(s), {} baselined, {} allowed\n",
        outcome.findings.len(),
        outcome.baselined,
        outcome.allowed
    ));
    out
}

/// Renders the one-line `--stats` summary.
pub fn render_stats(outcome: &Outcome) -> String {
    let s = &outcome.stats;
    let by_rule = ["lock-order", "panic", "unsafe", "design"]
        .iter()
        .map(|r| format!("{r}={}", s.by_rule.get(r).copied().unwrap_or(0)))
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "lint-stats: files={} manifests={} locks={} acquisitions={} condvar_sites={} edges={} \
         {} baselined={} allowed={}",
        s.files,
        s.manifests,
        s.locks,
        s.acquisitions,
        s.condvar_sites,
        s.edges,
        by_rule,
        outcome.baselined,
        outcome.allowed
    )
}

fn load_manifests(opts: &Options) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut paths = vec![opts.root.join("Cargo.toml")];
    let crates = opts.root.join("crates");
    if crates.is_dir() {
        let mut dirs = Vec::new();
        source::collect_crate_dirs(&crates, &mut dirs);
        for d in dirs {
            paths.push(d.join("Cargo.toml"));
        }
    }
    for p in paths {
        let Ok(text) = std::fs::read_to_string(&p) else {
            continue;
        };
        let rel = p
            .strip_prefix(&opts.root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, text));
    }
    out
}
