//! Single-flight deduplication of in-progress work.
//!
//! A thundering herd of identical synthesis requests — N clients asking
//! for the same (topology, collective, size, config) key at once — must
//! synthesize **once**: the first caller becomes the *leader* of a
//! flight, everyone else *joins* it and blocks until the leader's result
//! is published, receiving a clone. [`InFlightRegistry`] is that
//! coordination keyed by the same tagged fingerprints
//! [`crate::AlgorithmCache`] uses.
//!
//! The registry is deliberately decoupled from *where* the work runs:
//! [`InFlightRegistry::begin`] hands back a [`Flight`] handle, and
//! whoever executes the work (the leader's thread, a worker pool)
//! publishes through [`InFlightRegistry::complete`], which also retires
//! the key so later requests start a fresh flight (or hit a cache layered
//! in front). Waiters block on [`Flight::wait`] or give up after a
//! deadline with [`Flight::wait_timeout`] — a waiter abandoning a flight
//! does not cancel it.
//!
//! **Poisoning policy:** every lock here guards plain data (an `Option`
//! result, a `HashMap` of handles) whose invariants hold between any two
//! mutations, so a panicking peer cannot leave them torn. Acquisitions
//! therefore recover the guard with
//! `unwrap_or_else(PoisonError::into_inner)` instead of propagating the
//! poison: one crashed worker must not take the whole registry down with
//! it. `tacos lint` (panic rule) enforces this on the serving path.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// The shared state of one in-progress flight.
#[derive(Debug)]
struct FlightState<T> {
    done: Mutex<Option<T>>,
    cv: Condvar,
}

/// A handle onto one in-progress flight; cheap to clone, wait on it with
/// [`Flight::wait`] / [`Flight::wait_timeout`].
#[derive(Debug)]
pub struct Flight<T>(Arc<FlightState<T>>);

impl<T> Clone for Flight<T> {
    fn clone(&self) -> Self {
        Flight(Arc::clone(&self.0))
    }
}

impl<T: Clone> Flight<T> {
    /// Blocks until the flight's result is published, returning a clone.
    pub fn wait(&self) -> T {
        let mut done = self.0.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = done.as_ref() {
                return value.clone();
            }
            done = self.0.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the result is published or `timeout` elapses.
    /// `None` means the deadline expired — the flight itself continues
    /// and its result still lands wherever completion publishes it.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut done = self.0.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = done.as_ref() {
                return Some(value.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .0
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            done = guard;
        }
    }

    /// Whether the result has been published (non-blocking).
    pub fn is_done(&self) -> bool {
        self.0
            .done
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }
}

/// The role [`InFlightRegistry::begin`] assigned to a caller.
#[derive(Debug)]
pub enum FlightEntry<T> {
    /// No flight existed for the key: this caller is responsible for
    /// getting the work executed and [`InFlightRegistry::complete`]d.
    Leader(Flight<T>),
    /// An identical request is already in progress: wait on the handle.
    Follower(Flight<T>),
}

impl<T> FlightEntry<T> {
    /// The flight handle, regardless of role.
    pub fn flight(&self) -> &Flight<T> {
        match self {
            FlightEntry::Leader(f) | FlightEntry::Follower(f) => f,
        }
    }

    /// `true` for the caller that must arrange execution.
    pub fn is_leader(&self) -> bool {
        matches!(self, FlightEntry::Leader(_))
    }
}

/// Deduplication registry: at most one in-progress flight per key.
#[derive(Debug, Default)]
pub struct InFlightRegistry<T> {
    inner: Mutex<HashMap<String, Flight<T>>>,
}

impl<T: Clone> InFlightRegistry<T> {
    /// An empty registry.
    pub fn new() -> Self {
        InFlightRegistry {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the in-progress flight for `key`, or starts one: exactly one
    /// concurrent caller per key receives [`FlightEntry::Leader`].
    pub fn begin(&self, key: &str) -> FlightEntry<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(flight) = inner.get(key) {
            return FlightEntry::Follower(flight.clone());
        }
        let flight = Flight(Arc::new(FlightState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }));
        inner.insert(key.to_string(), flight.clone());
        FlightEntry::Leader(flight)
    }

    /// Publishes the result of `key`'s flight, waking every waiter, and
    /// retires the key so the next identical request starts fresh.
    ///
    /// Completing a key with no registered flight is a no-op (the flight
    /// may already have been completed through another path, e.g. a
    /// leader publishing a rejection after its worker handoff failed).
    pub fn complete(&self, key: &str, value: T) {
        let flight = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(key);
        if let Some(flight) = flight {
            *flight.0.done.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            flight.0.cv.notify_all();
        }
    }

    /// Number of in-progress flights.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn one_leader_many_followers_one_execution() {
        let registry = Arc::new(InFlightRegistry::<u64>::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let registry = Arc::clone(&registry);
            let executions = Arc::clone(&executions);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                match registry.begin("k") {
                    FlightEntry::Leader(flight) => {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Simulate work, then publish.
                        std::thread::sleep(Duration::from_millis(20));
                        registry.complete("k", 42);
                        flight.wait()
                    }
                    FlightEntry::Follower(flight) => flight.wait(),
                }
            }));
        }
        let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one leader");
        assert!(results.iter().all(|&v| v == 42));
        assert!(registry.is_empty(), "completed flights retire their key");
    }

    #[test]
    fn completed_keys_start_fresh_flights() {
        let registry = InFlightRegistry::<u64>::new();
        let first = registry.begin("k");
        assert!(first.is_leader());
        registry.complete("k", 1);
        assert_eq!(first.flight().wait(), 1);
        // A new request after completion leads again (no stale flight).
        assert!(registry.begin("k").is_leader());
        // Distinct keys are independent flights.
        assert!(registry.begin("other").is_leader());
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn wait_timeout_gives_up_without_cancelling() {
        let registry = InFlightRegistry::<u64>::new();
        let entry = registry.begin("slow");
        let flight = entry.flight().clone();
        assert_eq!(flight.wait_timeout(Duration::from_millis(10)), None);
        assert!(!flight.is_done());
        // The flight is still live; completion reaches late waiters.
        registry.complete("slow", 7);
        assert_eq!(flight.wait_timeout(Duration::from_millis(10)), Some(7));
        assert!(flight.is_done());
    }

    #[test]
    fn completing_an_unknown_key_is_a_no_op() {
        let registry = InFlightRegistry::<u64>::new();
        registry.complete("never-began", 9);
        assert!(registry.is_empty());
    }
}
