//! Broken fixture: a matcher-kernel file that never references the
//! matcher fingerprint constant, so cache keys can go stale silently.

pub fn probe(x: u64) -> u64 {
    x.trailing_zeros() as u64
}
