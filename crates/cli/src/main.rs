//! `tacos` — command-line topology-aware collective algorithm synthesizer.
//!
//! Mirrors the paper's artifact: feed it a topology and a collective,
//! get back a synthesized algorithm and its predicted performance. Whole
//! evaluation campaigns run from declarative scenario files instead of
//! flags:
//!
//! ```text
//! tacos --topology mesh:3x3 --collective all-reduce --size 64MB
//! tacos --topology dragonfly:5x4 --collective all-gather --size 1GB \
//!       --algo ring --simulate --json
//! tacos scenario expand scenarios/size_sweep.toml
//! tacos scenario run scenarios/size_sweep.toml
//! ```

use std::process::ExitCode;

use tacos_baselines::{BaselineAlgorithm, IdealBound};
use tacos_collective::Collective;
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_report::{fmt_f64, Json, Table};
use tacos_scenario::{parse_baseline, parse_pattern, parse_size, parse_topology};
use tacos_sim::Simulator;
use tacos_topology::{Bandwidth, LinkSpec, Time};

/// How a failure should be presented: usage mistakes get the USAGE block
/// appended; runtime failures (a bad scenario file, failed points) print
/// only their message so it isn't buried under 35 lines of flag help.
#[derive(Debug, PartialEq)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: tacos [options]
       tacos scenario run <file.toml> [scenario options]
       tacos scenario expand <file.toml>
       tacos scenario diff <a.csv> <b.csv> [--tol 1e-9]
       tacos serve [serve options]
       tacos serve-bench <file.toml> [serve-bench options]
       tacos chaos [--seed N] [--quiet]
       tacos lint [--fix-baseline] [--stats] [--root DIR]

single-point options:
  --topology SPEC    ring:N | fc:N | mesh:RxC | torus:XxY[xZ] | hypercube:XxYxZ |
                     switch:N[:dD] | switch2d:RxC | rfs:RxFxS | dragonfly:GxP | dgx1
  --collective P     all-gather | reduce-scatter | all-reduce (default) |
                     all-to-all | gather[:ROOT] | scatter[:ROOT] | broadcast[:ROOT]
  --size BYTES       e.g. 1GB, 64MB, 1KB (default 64MB)
  --chunks K         chunking factor per NPU (default 1)
  --algo A           tacos (default) | ring | ring-uni | direct | rhd | dbt |
                     multitree | taccl
  --alpha US         link latency in microseconds (default 0.5)
  --bw GBPS          link bandwidth in GB/s (default 50)
  --seed N           RNG seed (default 42)
  --attempts N       best-of-N randomized synthesis (default 1)
  --simulate         additionally run the congestion-aware simulator
  --json             machine-readable output
  --export-json F    write the full algorithm (transfers) as JSON to file F
  --export-xml F     write the algorithm as MSCCL-style XML to file F

scenario options (override the file's [run] table):
  --threads N        worker threads (0 = all cores)
  --cache DIR        algorithm cache directory
  --no-cache         disable the algorithm cache
  --output STEM      write STEM.csv / STEM.json result artifacts
  --quick            run the scenario's [quick] reduced grid
  --quiet            suppress per-point progress on stderr

scenario diff options:
  --tol T            numeric tolerance for cell comparison (default 1e-9)

serve options (synthesis-as-a-service daemon; line-delimited JSON over TCP):
  --addr HOST:PORT   listen address (default 127.0.0.1:7440; port 0 = ephemeral)
  --workers N        synthesis worker threads (default 2)
  --queue-depth N    admission queue: waiting syntheses before requests are
                     rejected (default 32)
  --cache-dir DIR    persist the warm cache to DIR on shutdown/checkpoint and
                     reload it on start (matcher-version checked)
  --deadline-ms MS   default per-request deadline (requests may override)
  --checkpoint-every SECS
                     also persist the warm cache every SECS seconds
                     (crash-safe: temp file + fsync + atomic rename)
  --max-line-bytes N cap on one request line; longer lines get a typed
                     error and the connection closes (default 1048576)
  --idle-timeout-secs SECS
                     close connections idle longer than SECS (0 = never;
                     default 300)
  --max-connections N
                     concurrent connection cap; excess connections get a
                     typed 'rejected' with retry_after_ms (default 256)
  --retry-after-ms MS
                     backoff hint attached to rejected responses (default 100)
  --warm-max-entries N
                     cap on resident warm-cache entries; least-recently-used
                     entries are evicted on insert (default 0 = unbounded)
  --warm-max-bytes B cap on approximate warm-cache bytes, e.g. 64MB
                     (default 0 = unbounded); caps also apply to reloads
  --faults SPEC      deterministic fault injection for chaos testing, e.g.
                     panic@3,stall@1:50,conn-delay@2:20,checkpoint-abort@2
  --quiet            suppress daemon notices on stderr

serve-bench options (replay a scenario grid against a running daemon):
  --addr HOST:PORT   daemon address (default 127.0.0.1:7440)
  --concurrency LIST comma-separated client counts to measure (default 1,4)
  --deadline-ms MS   attach a deadline to every replayed request
  --retries N        retry budget per rejected request, with exponential
                     backoff honoring the daemon's retry_after_ms (default 3)
  --output FILE      write the JSON report to FILE (default BENCH_PR9.json)
  --quick            replay the scenario's [quick] reduced grid

chaos options (drive a private daemon through a seeded fault plan and
assert its operational invariants; nonzero exit on any violation):
  --seed N           fault-plan seed (default 1); each seed is deterministic
  --quiet            only print the final verdict

lint options (repo-native static analysis: lock-order deadlock detection,
panic-path audit, unsafe hygiene, design rules; nonzero exit on any
finding not absorbed by lint.baseline):
  --root DIR         workspace root to scan (default .)
  --fix-baseline     rewrite lint.baseline from the current findings
  --stats            also print the one-line lint-stats summary";

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("scenario") => return scenario_command(&args[1..]),
        Some("serve") => return serve_command(&args[1..]),
        Some("serve-bench") => return serve_bench_command(&args[1..]),
        Some("chaos") => return chaos_command(&args[1..]),
        Some("lint") => return lint_command(&args[1..]),
        _ => {}
    }
    // Legacy single-point mode: most failures are flag mistakes, so they
    // keep the usage text.
    run_single_point(args).map_err(CliError::Usage)
}

/// `tacos scenario run|expand <file.toml> [options]` and
/// `tacos scenario diff <a.csv> <b.csv> [--tol T]`.
fn scenario_command(args: &[String]) -> Result<(), CliError> {
    let action = args.first().ok_or_else(|| {
        CliError::Usage("scenario needs a subcommand: run | expand | diff".into())
    })?;
    if action == "diff" {
        return scenario_diff(&args[1..]);
    }
    let file = args
        .get(1)
        .ok_or_else(|| CliError::Usage(format!("scenario {action} needs a <file.toml>")))?;
    if !matches!(action.as_str(), "run" | "expand") {
        return Err(CliError::Usage(format!(
            "unknown scenario subcommand '{action}' (expected run | expand | diff)"
        )));
    }
    let full_spec = tacos_scenario::ScenarioSpec::from_file(file)
        .map_err(|e| CliError::Runtime(e.to_string()))?;

    let mut it = args.iter().skip(2);
    let mut run_only_flags: Vec<&str> = Vec::new();
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut cache: Option<Option<String>> = None;
    let mut output: Option<String> = None;
    let mut quiet = false;
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        run_only_flags.push(match arg.as_str() {
            "--threads" => {
                threads = Some(
                    take("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                );
                "--threads"
            }
            "--cache" => {
                cache = Some(Some(take("--cache")?));
                "--cache"
            }
            "--no-cache" => {
                cache = Some(None);
                "--no-cache"
            }
            "--output" => {
                output = Some(take("--output")?);
                "--output"
            }
            "--quick" => {
                quick = true;
                "--quick"
            }
            "--quiet" => {
                quiet = true;
                "--quiet"
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown scenario argument '{other}'"
                )))
            }
        });
    }
    if action == "expand" {
        if let Some(flag) = run_only_flags.first() {
            return Err(CliError::Usage(format!(
                "{flag} only applies to 'scenario run'; 'scenario expand' is a dry run"
            )));
        }
    }
    if quick && full_spec.quick.is_none() {
        return Err(CliError::Runtime(format!(
            "--quick: scenario '{}' declares no [quick] section",
            full_spec.name
        )));
    }
    let mut spec = if quick {
        full_spec.quick_spec().clone()
    } else {
        full_spec
    };
    if let Some(n) = threads {
        spec.run.threads = n;
    }
    if let Some(c) = cache {
        spec.run.cache = c;
    }
    if let Some(stem) = output {
        spec.output = Some(stem);
    }
    if quiet {
        spec.run.quiet = true;
    }

    match action.as_str() {
        "expand" => {
            let points =
                tacos_scenario::expand(&spec).map_err(|e| CliError::Runtime(e.to_string()))?;
            println!("scenario : {} ({} points)", spec.name, points.len());
            if !spec.description.is_empty() {
                println!("about    : {}", spec.description);
            }
            let training = spec.evaluation.is_training();
            let mut header = vec!["#", "topology"];
            if training {
                header.push("model");
            }
            header.extend(["without", "link"]);
            if !training {
                header.extend(["collective", "size"]);
            }
            header.extend(["chunks", "algo", "seed", "attempts", "cheap"]);
            let mut t = Table::new(header);
            for p in &points {
                let mut row = vec![p.index.to_string(), p.topology.clone()];
                if training {
                    row.push(p.model.clone().unwrap_or_default());
                }
                row.extend([p.without_links.label(), p.link.to_string()]);
                if !training {
                    row.extend([p.collective.clone(), p.size_label.clone()]);
                }
                row.extend([
                    p.chunks.to_string(),
                    p.algo.clone(),
                    p.seed.to_string(),
                    p.attempts.to_string(),
                    if p.prefer_cheap_links { "on" } else { "off" }.into(),
                ]);
                t.row(row);
            }
            print!("{t}");
            Ok(())
        }
        "run" => {
            // Ctrl-C stops claiming new points; finished work is still
            // flushed to the CSV/JSON artifacts before exiting nonzero.
            tacos_core::shutdown::install();
            let summary =
                tacos_scenario::run(&spec).map_err(|e| CliError::Runtime(e.to_string()))?;
            let mut t = Table::new(vec![
                "#",
                "point",
                "npus",
                "time",
                "GB/s",
                "eff",
                "transfers",
                "cache",
            ]);
            for r in &summary.records {
                match &r.result {
                    Ok(m) => t.row(vec![
                        r.point.index.to_string(),
                        r.point.label(),
                        m.num_npus.to_string(),
                        format!("{}", m.collective_time),
                        m.bandwidth_gbps.map(fmt_f64).unwrap_or_else(|| "-".into()),
                        format!("{:.1}%", m.efficiency * 100.0),
                        m.transfers.to_string(),
                        match m.cache {
                            Some(tacos_core::CacheOutcome::Hit) => "hit".into(),
                            Some(tacos_core::CacheOutcome::Miss) => "miss".into(),
                            None => "off".into(),
                        },
                    ]),
                    // Timed-out points are not failures (the summary and
                    // exit code treat them separately); don't print a row
                    // a log grep for FAILED would catch.
                    Err(e) => t.row(vec![
                        r.point.index.to_string(),
                        r.point.label(),
                        "-".into(),
                        if e.starts_with(tacos_scenario::TIMED_OUT)
                            || e == tacos_scenario::INTERRUPTED
                        {
                            e.clone()
                        } else {
                            format!("FAILED: {e}")
                        },
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]),
                };
            }
            print!("{t}");
            println!(
                "{} points: {} generated, {} cache hits, {} failed, {} timed out, \
                 {} interrupted in {:.2}s",
                summary.records.len(),
                summary.generated,
                summary.cache_hits,
                summary.failed,
                summary.timed_out,
                summary.interrupted,
                summary.elapsed.as_secs_f64()
            );
            if let Some(stem) = &spec.output {
                if summary.has_timeline() {
                    eprintln!(
                        "(results written to {stem}.csv, {stem}.json, and {stem}.timeline.csv)"
                    );
                } else {
                    eprintln!("(results written to {stem}.csv and {stem}.json)");
                }
            }
            if summary.failed > 0 {
                return Err(CliError::Runtime(format!(
                    "{} of {} points failed",
                    summary.failed,
                    summary.records.len()
                )));
            }
            if summary.interrupted > 0 {
                return Err(CliError::Runtime(format!(
                    "interrupted: {} of {} points not executed (partial results kept)",
                    summary.interrupted,
                    summary.records.len()
                )));
            }
            Ok(())
        }
        _ => unreachable!("subcommand validated above"),
    }
}

/// `tacos serve [options]`: the synthesis-as-a-service daemon. Blocks
/// until SIGINT/SIGTERM or a client `shutdown` op, then drains workers
/// and persists the warm cache.
fn serve_command(args: &[String]) -> Result<(), CliError> {
    let mut config = tacos_serve::DaemonConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--addr" => config.addr = take("--addr")?,
            "--workers" => {
                config.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--queue-depth" => {
                config.queue_depth = take("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?
            }
            "--cache-dir" => config.cache_dir = Some(take("--cache-dir")?.into()),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                )
            }
            "--checkpoint-every" => {
                let secs: u64 = take("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if secs == 0 {
                    return Err(CliError::Usage(
                        "--checkpoint-every must be at least 1 second".into(),
                    ));
                }
                config.checkpoint_every = Some(std::time::Duration::from_secs(secs));
            }
            "--max-line-bytes" => {
                config.max_line_bytes = take("--max-line-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --max-line-bytes: {e}"))?
            }
            "--idle-timeout-secs" => {
                let secs: u64 = take("--idle-timeout-secs")?
                    .parse()
                    .map_err(|e| format!("bad --idle-timeout-secs: {e}"))?;
                config.idle_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--max-connections" => {
                config.max_connections = take("--max-connections")?
                    .parse()
                    .map_err(|e| format!("bad --max-connections: {e}"))?
            }
            "--retry-after-ms" => {
                config.retry_after_ms = take("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("bad --retry-after-ms: {e}"))?
            }
            "--warm-max-entries" => {
                config.warm_limits.max_entries = take("--warm-max-entries")?
                    .parse()
                    .map_err(|e| format!("bad --warm-max-entries: {e}"))?
            }
            "--warm-max-bytes" => {
                config.warm_limits.max_bytes = parse_size(&take("--warm-max-bytes")?)
                    .map_err(|e| format!("bad --warm-max-bytes: {e}"))?
                    .as_u64()
            }
            "--faults" => {
                config.faults = tacos_serve::FaultPlan::parse(&take("--faults")?)
                    .map_err(|e| format!("bad --faults: {e}"))?
            }
            "--quiet" => config.quiet = true,
            other => return Err(CliError::Usage(format!("unknown serve argument '{other}'"))),
        }
    }

    tacos_core::shutdown::install();
    let quiet = config.quiet;
    let handle = tacos_serve::Daemon::spawn(config)
        .map_err(|e| CliError::Runtime(format!("failed to start daemon: {e}")))?;
    if !quiet {
        eprintln!(
            "tacos serve: listening on {} (line-delimited JSON; Ctrl-C to stop)",
            handle.addr()
        );
    }
    while !tacos_core::shutdown::requested() && !handle.stop_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stats = handle.stats();
    handle
        .stop()
        .map_err(|e| CliError::Runtime(format!("failed to persist warm cache: {e}")))?;
    if !quiet {
        eprintln!(
            "tacos serve: stopped after {} requests ({} cache hits, {} synthesized, \
             {} deduplicated, {} rejected, {} evicted, {} worker restarts, {} checkpoints)",
            stats.requests,
            stats.cache_hits,
            stats.synthesized,
            stats.deduplicated,
            stats.rejected,
            stats.evictions,
            stats.worker_restarts,
            stats.checkpoints
        );
    }
    Ok(())
}

/// `tacos serve-bench <file.toml> [options]`: replay a scenario grid as
/// a request trace against a running daemon and record throughput and
/// latency percentiles per concurrency level.
fn serve_bench_command(args: &[String]) -> Result<(), CliError> {
    let file = args
        .first()
        .ok_or_else(|| CliError::Usage("serve-bench needs a <file.toml> trace scenario".into()))?;
    let mut config = tacos_serve::BenchConfig::default();
    let mut output = String::from("BENCH_PR9.json");
    let mut quick = false;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--addr" => config.addr = take("--addr")?,
            "--concurrency" => {
                config.concurrency = take("--concurrency")?
                    .split(',')
                    .map(|v| v.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| format!("bad --concurrency: {e}"))?;
                if config.concurrency.is_empty() {
                    return Err(CliError::Usage(
                        "--concurrency needs at least one level".into(),
                    ));
                }
            }
            "--deadline-ms" => {
                config.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                )
            }
            "--retries" => {
                config.retries = take("--retries")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?
            }
            "--output" => output = take("--output")?,
            "--quick" => quick = true,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown serve-bench argument '{other}'"
                )))
            }
        }
    }

    let full_spec = tacos_scenario::ScenarioSpec::from_file(file)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    if quick && full_spec.quick.is_none() {
        return Err(CliError::Runtime(format!(
            "--quick: scenario '{}' declares no [quick] section",
            full_spec.name
        )));
    }
    let spec = if quick {
        full_spec.quick_spec().clone()
    } else {
        full_spec
    };

    let report = tacos_serve::bench::run(&spec, &config).map_err(CliError::Runtime)?;
    let mut t = Table::new(vec![
        "clients", "requests", "wall s", "req/s", "p50 ms", "p95 ms", "p99 ms", "ok", "hits",
        "dedup", "rejected", "retried", "deadline", "errors", "warm", "evicted",
    ]);
    if let Some(levels) = report.get("levels").and_then(Json::as_array) {
        for level in levels {
            let cell = |key: &str| -> String {
                match level.get(key) {
                    Some(Json::Num(v)) => fmt_f64(*v),
                    Some(Json::Uint(v)) => v.to_string(),
                    _ => "-".into(),
                }
            };
            t.row(vec![
                cell("concurrency"),
                cell("requests"),
                cell("wall_s"),
                cell("throughput_rps"),
                cell("p50_ms"),
                cell("p95_ms"),
                cell("p99_ms"),
                cell("ok"),
                cell("cache_hits"),
                cell("deduplicated"),
                cell("rejected"),
                cell("retried"),
                cell("deadline"),
                cell("errors"),
                cell("warm_entries"),
                cell("evictions"),
            ]);
        }
    }
    print!("{t}");
    std::fs::write(&output, format!("{report}\n"))
        .map_err(|e| CliError::Runtime(format!("failed to write {output}: {e}")))?;
    eprintln!("(bench report written to {output})");
    Ok(())
}

/// `tacos chaos [--seed N] [--quiet]`: spawn a private daemon under a
/// seeded fault plan and assert the operational invariants — exactly one
/// typed response per request, worker panics contained to their flight,
/// torn checkpoints salvaged, oversized lines bounded, overload
/// recoverable. Nonzero exit on the first violated invariant.
fn chaos_command(args: &[String]) -> Result<(), CliError> {
    let mut options = tacos_serve::ChaosOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("missing value for --seed".into()))?;
                options.seed = v
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad --seed: {e}")))?;
            }
            "--quiet" => options.quiet = true,
            other => return Err(CliError::Usage(format!("unknown chaos argument '{other}'"))),
        }
    }
    let report = tacos_serve::chaos::run(&options).map_err(|violation| {
        CliError::Runtime(format!("chaos (seed {}): {violation}", options.seed))
    })?;
    println!(
        "tacos chaos: seed {} passed — {} invariants held under plan '{}'",
        report.seed,
        report.passed.len(),
        report.plan
    );
    Ok(())
}

/// `tacos lint [--fix-baseline] [--stats] [--root DIR]`: run the
/// repo-native static analyses. Exit is nonzero when any finding is not
/// absorbed by `lint.baseline`, so CI can gate on it directly.
fn lint_command(args: &[String]) -> Result<(), CliError> {
    let mut root = std::path::PathBuf::from(".");
    let mut fix = false;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("missing value for --root".into()))?;
                root = std::path::PathBuf::from(v);
            }
            "--fix-baseline" => fix = true,
            "--stats" => stats = true,
            other => return Err(CliError::Usage(format!("unknown lint argument '{other}'"))),
        }
    }
    let opts = tacos_lint::Options::new(root);
    if fix {
        let n = tacos_lint::fix_baseline(&opts).map_err(CliError::Runtime)?;
        println!("tacos lint: baseline rewritten with {n} grandfathered finding(s)");
        return Ok(());
    }
    let outcome = tacos_lint::run(&opts).map_err(CliError::Runtime)?;
    print!("{}", tacos_lint::render_report(&outcome));
    if stats {
        println!("{}", tacos_lint::render_stats(&outcome));
    }
    if outcome.findings.is_empty() {
        Ok(())
    } else {
        Err(CliError::Runtime(format!(
            "{} lint finding(s) — fix them, add `// lint: allow(rule, \"reason\")` where \
             justified, or (for pre-existing debt only) run `tacos lint --fix-baseline`",
            outcome.findings.len()
        )))
    }
}

/// `tacos scenario diff <a.csv> <b.csv> [--tol T]`: column-aware compare
/// of two shaped result sets; mismatches print and exit nonzero.
fn scenario_diff(args: &[String]) -> Result<(), CliError> {
    let a = args
        .first()
        .ok_or_else(|| CliError::Usage("scenario diff needs <a.csv> <b.csv>".into()))?;
    let b = args
        .get(1)
        .ok_or_else(|| CliError::Usage("scenario diff needs <a.csv> <b.csv>".into()))?;
    let mut tol = 1e-9f64;
    let mut it = args.iter().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("missing value for --tol".into()))?;
                tol = v
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad --tol: {e}")))?;
                if !tol.is_finite() || tol < 0.0 {
                    return Err(CliError::Usage("--tol must be a finite value >= 0".into()));
                }
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown scenario diff argument '{other}'"
                )))
            }
        }
    }
    let report =
        tacos_scenario::diff_csv_files(a, b, tol).map_err(|e| CliError::Runtime(e.to_string()))?;
    if report.is_match() {
        println!("{report}");
        Ok(())
    } else {
        Err(CliError::Runtime(report.to_string()))
    }
}

fn run_single_point(args: &[String]) -> Result<(), String> {
    let mut topology_spec = String::from("mesh:3x3");
    let mut pattern = String::from("all-reduce");
    let mut size = String::from("64MB");
    let mut algo = String::from("tacos");
    let mut alpha_us = 0.5f64;
    let mut bw_gbps = 50.0f64;
    let mut seed = 42u64;
    let mut attempts = 1usize;
    let mut chunks = 1usize;
    let mut simulate = false;
    let mut json = false;
    let mut export_json: Option<String> = None;
    let mut export_xml: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--topology" => topology_spec = take("--topology")?,
            "--collective" => pattern = take("--collective")?,
            "--size" => size = take("--size")?,
            "--algo" => algo = take("--algo")?,
            "--alpha" => {
                alpha_us = take("--alpha")?
                    .parse()
                    .map_err(|e| format!("bad --alpha: {e}"))?
            }
            "--bw" => {
                bw_gbps = take("--bw")?
                    .parse()
                    .map_err(|e| format!("bad --bw: {e}"))?
            }
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--attempts" => {
                attempts = take("--attempts")?
                    .parse()
                    .map_err(|e| format!("bad --attempts: {e}"))?
            }
            "--chunks" => {
                chunks = take("--chunks")?
                    .parse()
                    .map_err(|e| format!("bad --chunks: {e}"))?
            }
            "--simulate" => simulate = true,
            "--json" => json = true,
            "--export-json" => export_json = Some(take("--export-json")?),
            "--export-xml" => export_xml = Some(take("--export-xml")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let spec = LinkSpec::new(Time::from_micros(alpha_us), Bandwidth::gbps(bw_gbps));
    let topo = parse_topology(&topology_spec, spec)?;
    let size = parse_size(&size)?;
    let pattern = parse_pattern(&pattern, topo.num_npus())?;
    let collective = Collective::with_chunking(pattern, topo.num_npus(), chunks.max(1), size)
        .map_err(|e| e.to_string())?;

    let started = std::time::Instant::now();
    let algorithm = match algo.as_str() {
        "tacos" => {
            let config = SynthesizerConfig::default()
                .with_seed(seed)
                .with_attempts(attempts.max(1));
            Synthesizer::new(config)
                .synthesize(&topo, &collective)
                .map_err(|e| e.to_string())?
                .into_algorithm()
        }
        name => {
            let kind = parse_baseline(name, seed)?;
            BaselineAlgorithm::new(kind)
                .generate(&topo, &collective)
                .map_err(|e| e.to_string())?
        }
    };
    let synth_time = started.elapsed();

    let sim_report = if simulate || algorithm.planned_time().is_none() {
        Some(
            Simulator::new()
                .simulate(&topo, &algorithm)
                .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };
    let collective_time = sim_report
        .as_ref()
        .map(|r| r.collective_time())
        .unwrap_or_else(|| algorithm.collective_time());
    let bandwidth_gbps = if collective_time.is_zero() {
        f64::INFINITY
    } else {
        size.as_u64() as f64 / collective_time.as_secs_f64() / 1e9
    };
    let ideal = IdealBound::new(&topo);
    let efficiency = ideal.efficiency(pattern, size, collective_time);

    if let Some(path) = &export_json {
        std::fs::write(path, tacos_collective::export::to_json(&algorithm))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("(algorithm JSON written to {path})");
    }
    if let Some(path) = &export_xml {
        std::fs::write(path, tacos_collective::export::to_msccl_xml(&algorithm))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("(MSCCL-style XML written to {path})");
    }
    if json {
        let out = Json::obj([
            ("topology", Json::Str(topo.name().into())),
            ("num_npus", (topo.num_npus() as u64).into()),
            ("num_links", (topo.num_links() as u64).into()),
            ("collective", Json::Str(pattern.short_name().into())),
            ("size_bytes", size.as_u64().into()),
            ("algorithm", Json::Str(algorithm.name().into())),
            ("transfers", (algorithm.len() as u64).into()),
            ("collective_time_ps", collective_time.as_ps().into()),
            ("bandwidth_gbps", bandwidth_gbps.into()),
            ("efficiency_vs_ideal", efficiency.into()),
            ("synthesis_seconds", synth_time.as_secs_f64().into()),
        ]);
        println!("{out}");
    } else {
        println!("topology   : {topo}");
        println!("collective : {pattern} of {size} ({chunks} chunk(s)/NPU)");
        println!(
            "algorithm  : {} ({} transfers)",
            algorithm.name(),
            algorithm.len()
        );
        println!("synthesis  : {:.3}s", synth_time.as_secs_f64());
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec!["collective time".into(), format!("{collective_time}")]);
        t.row(vec![
            "bandwidth".into(),
            format!("{} GB/s", fmt_f64(bandwidth_gbps)),
        ]);
        t.row(vec![
            "efficiency vs ideal".into(),
            format!("{:.1}%", efficiency * 100.0),
        ]);
        if let Some(r) = &sim_report {
            t.row(vec![
                "avg link utilization".into(),
                format!("{:.1}%", r.average_utilization() * 100.0),
            ]);
            t.row(vec!["messages simulated".into(), r.messages().to_string()]);
        }
        print!("{t}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_baselines::BaselineKind;
    use tacos_collective::CollectivePattern;
    use tacos_topology::ByteSize;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_size("1GB").unwrap(), ByteSize::gb(1));
        assert_eq!(parse_size("64MB").unwrap(), ByteSize::mb(64));
        assert_eq!(parse_size("1KB").unwrap(), ByteSize::kb(1));
        assert_eq!(parse_size("512").unwrap(), ByteSize::bytes(512));
        assert_eq!(parse_size("2GiB").unwrap(), ByteSize::gib(2));
        assert!(parse_size("abc").is_err());
    }

    #[test]
    fn parse_topologies() {
        let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
        assert_eq!(parse_topology("ring:8", spec).unwrap().num_npus(), 8);
        assert_eq!(parse_topology("mesh:3x3", spec).unwrap().num_npus(), 9);
        assert_eq!(parse_topology("torus:2x2x2", spec).unwrap().num_npus(), 8);
        assert_eq!(parse_topology("fc:4", spec).unwrap().num_npus(), 4);
        assert_eq!(parse_topology("switch:4:d2", spec).unwrap().num_links(), 8);
        assert_eq!(parse_topology("rfs:2x4x8", spec).unwrap().num_npus(), 64);
        assert_eq!(
            parse_topology("dragonfly:5x4", spec).unwrap().num_npus(),
            20
        );
        assert_eq!(parse_topology("dgx1", spec).unwrap().num_npus(), 8);
        assert!(parse_topology("blob:3", spec).is_err());
        assert!(parse_topology("mesh:3", spec).is_err());
    }

    #[test]
    fn parse_patterns_and_baselines() {
        assert_eq!(
            parse_pattern("ar", 4).unwrap(),
            CollectivePattern::AllReduce
        );
        assert_eq!(
            parse_pattern("all-gather", 4).unwrap(),
            CollectivePattern::AllGather
        );
        assert_eq!(
            parse_pattern("a2a", 4).unwrap(),
            CollectivePattern::AllToAll
        );
        assert_eq!(
            parse_pattern("gather:2", 4).unwrap(),
            CollectivePattern::Gather {
                root: tacos_topology::NpuId::new(2)
            }
        );
        assert_eq!(
            parse_pattern("scatter", 4).unwrap(),
            CollectivePattern::Scatter {
                root: tacos_topology::NpuId::new(0)
            }
        );
        assert!(parse_pattern("gather:9", 4).is_err());
        assert!(parse_pattern("frobnicate", 4).is_err());
        assert!(matches!(
            parse_baseline("ring", 0).unwrap(),
            BaselineKind::Ring
        ));
        assert!(matches!(
            parse_baseline("taccl", 9).unwrap(),
            BaselineKind::TacclLike(_)
        ));
        assert!(parse_baseline("magic", 0).is_err());
    }

    fn temp_file(tag: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("tacos-cli-{tag}-{}.toml", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn scenario_expand_and_run_end_to_end() {
        let path = temp_file(
            "ok",
            r#"
[scenario]
name = "cli-test"
[sweep]
topology = ["ring:4"]
collective = ["all-gather"]
size = ["4MB"]
algo = ["ring"]
[run]
cache = false
"#,
        );
        let p = path.to_str().unwrap().to_string();
        run(&["scenario".into(), "expand".into(), p.clone()]).unwrap();
        run(&["scenario".into(), "run".into(), p, "--quiet".into()]).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_scenario_file_is_a_readable_error() {
        // Syntax error: the message must carry a line number, not a panic.
        let path = temp_file("bad", "[scenario]\nname = \"x\"\nbad = ");
        let err = run(&[
            "scenario".into(),
            "run".into(),
            path.to_str().unwrap().into(),
        ])
        .unwrap_err();
        assert!(err.message().contains("line 3"), "got: {err}");
        let _ = std::fs::remove_file(&path);

        // Invalid spec: readable validation message.
        let path = temp_file(
            "inval",
            "[scenario]\nname = \"x\"\n[sweep]\ntopology = [\"blob:3\"]",
        );
        let err = run(&[
            "scenario".into(),
            "run".into(),
            path.to_str().unwrap().into(),
        ])
        .unwrap_err();
        assert!(
            err.message().contains("unknown topology kind"),
            "got: {err}"
        );
        let _ = std::fs::remove_file(&path);

        // Missing file: IO error with the path, still no panic.
        let err = run(&[
            "scenario".into(),
            "run".into(),
            "/nonexistent/scenario.toml".into(),
        ])
        .unwrap_err();
        assert!(
            err.message().contains("/nonexistent/scenario.toml"),
            "got: {err}"
        );
    }

    #[test]
    fn scenario_run_exits_nonzero_on_point_failure_but_keeps_finished_rows() {
        let dir = std::env::temp_dir().join(format!("tacos-cli-fail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stem = dir.join("out").display().to_string();
        // rhd needs a power-of-two NPU count: one of the two points fails.
        let path = temp_file(
            "fail",
            r#"
[scenario]
name = "cli-fail"
[sweep]
topology = ["ring:3"]
collective = ["all-reduce"]
size = ["3MB"]
algo = ["ring", "rhd"]
[run]
cache = false
"#,
        );
        let err = run(&[
            "scenario".into(),
            "run".into(),
            path.to_str().unwrap().into(),
            "--quiet".into(),
            "--output".into(),
            stem.clone(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "got: {err:?}");
        assert!(err.message().contains("1 of 2 points failed"), "got: {err}");
        // The completed point still landed in the artifacts.
        let csv = std::fs::read_to_string(format!("{stem}.csv")).unwrap();
        assert_eq!(csv.lines().count(), 1 + 2);
        assert!(csv
            .lines()
            .any(|l| l.contains(",ring,") && l.ends_with(',')));
        assert!(std::path::Path::new(&format!("{stem}.json")).exists());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_usage_errors() {
        assert!(run(&["scenario".into()]).is_err());
        assert!(run(&["scenario".into(), "frobnicate".into(), "x.toml".into()]).is_err());
        assert!(run(&["scenario".into(), "diff".into(), "only-one.csv".into()]).is_err());
    }

    #[test]
    fn scenario_quick_runs_the_reduced_grid() {
        let path = temp_file(
            "quick",
            r#"
[scenario]
name = "cli-quick"
[sweep]
topology = ["ring:4", "ring:8"]
collective = ["all-gather"]
size = ["4MB"]
algo = ["ring"]
[quick]
topology = ["ring:4"]
[run]
cache = false
"#,
        );
        let p = path.to_str().unwrap().to_string();
        run(&[
            "scenario".into(),
            "run".into(),
            p.clone(),
            "--quick".into(),
            "--quiet".into(),
        ])
        .unwrap();
        // Without a [quick] section the flag is a readable error.
        let plain = temp_file(
            "noquick",
            "[scenario]\nname = \"x\"\n[sweep]\ntopology = [\"ring:4\"]\n",
        );
        let err = run(&[
            "scenario".into(),
            "run".into(),
            plain.to_str().unwrap().into(),
            "--quick".into(),
        ])
        .unwrap_err();
        assert!(
            err.message().contains("declares no [quick] section"),
            "got: {err}"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&plain);
    }

    #[test]
    fn scenario_diff_compares_result_sets() {
        let dir = std::env::temp_dir().join(format!("tacos-cli-diff-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        std::fs::write(&a, "scenario,point,bandwidth_gbps\ns,0,50\n").unwrap();
        std::fs::write(&b, "scenario,point,bandwidth_gbps\ns,0,50.0000000001\n").unwrap();
        // Within the default tolerance: match, exit zero.
        run(&[
            "scenario".into(),
            "diff".into(),
            a.display().to_string(),
            b.display().to_string(),
        ])
        .unwrap();
        // With a zero tolerance the same pair mismatches, nonzero exit,
        // readable report.
        let err = run(&[
            "scenario".into(),
            "diff".into(),
            a.display().to_string(),
            b.display().to_string(),
            "--tol".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
        assert!(err.message().contains("result sets differ"), "got: {err}");
        assert!(err.message().contains("bandwidth_gbps"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_expand_rejects_run_only_flags() {
        let path = temp_file(
            "expandflags",
            "[scenario]\nname = \"x\"\n[sweep]\ntopology = [\"ring:4\"]\n",
        );
        let p = path.to_str().unwrap().to_string();
        let err = run(&[
            "scenario".into(),
            "expand".into(),
            p.clone(),
            "--quiet".into(),
        ])
        .unwrap_err();
        assert!(
            err.message().contains("only applies to 'scenario run'"),
            "got: {err}"
        );
        run(&["scenario".into(), "expand".into(), p]).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn end_to_end_tacos_run() {
        run(&[
            "--topology".into(),
            "mesh:3x3".into(),
            "--collective".into(),
            "all-gather".into(),
            "--size".into(),
            "9MB".into(),
            "--json".into(),
        ])
        .unwrap();
    }

    #[test]
    fn end_to_end_baseline_run_with_sim() {
        run(&[
            "--topology".into(),
            "ring:8".into(),
            "--algo".into(),
            "ring".into(),
            "--size".into(),
            "8MB".into(),
            "--simulate".into(),
        ])
        .unwrap();
    }
}
