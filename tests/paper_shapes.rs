//! Headline paper results as regression tests: these assert the *shape* of
//! every major claim (who wins, roughly by how much) so the reproduction
//! cannot silently drift. EXPERIMENTS.md records the measured values.

use tacos::baselines::{BaselineAlgorithm, BaselineKind, IdealBound, TacclConfig};
use tacos::prelude::*;
use tacos_collective::CollectivePattern;
use tacos_topology::{Bandwidth, RingOrientation};

fn spec() -> LinkSpec {
    LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
}

fn sim_time(topo: &Topology, kind: BaselineKind, coll: &Collective) -> Time {
    let algo = BaselineAlgorithm::new(kind).generate(topo, coll).unwrap();
    Simulator::new()
        .simulate(topo, &algo)
        .unwrap()
        .collective_time()
}

fn tacos_time(topo: &Topology, coll: &Collective) -> Time {
    Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(8))
        .synthesize(topo, coll)
        .unwrap()
        .collective_time()
}

/// Fig. 2(a): on a physical Ring, the Ring algorithm crushes Direct
/// (paper: 16.71x); on FullyConnected, Direct crushes Ring (paper: 62.6x;
/// ours is about half that because our Ring is bidirectional throughout).
#[test]
fn fig2a_ring_vs_direct_shapes() {
    let size = ByteSize::gb(1);
    let ring_topo = Topology::ring(64, spec(), RingOrientation::Bidirectional).unwrap();
    let coll = Collective::all_reduce(64, size).unwrap();
    let ring_on_ring = sim_time(&ring_topo, BaselineKind::Ring, &coll);
    let direct_on_ring = sim_time(&ring_topo, BaselineKind::Direct, &coll);
    let ratio = direct_on_ring.as_secs_f64() / ring_on_ring.as_secs_f64();
    assert!(
        ratio > 10.0,
        "Ring should beat Direct on a ring by >10x, got {ratio:.1}x"
    );

    let fc = Topology::fully_connected(64, spec()).unwrap();
    let ring_on_fc = sim_time(&fc, BaselineKind::Ring, &coll);
    let direct_on_fc = sim_time(&fc, BaselineKind::Direct, &coll);
    let ratio = ring_on_fc.as_secs_f64() / direct_on_fc.as_secs_f64();
    assert!(
        ratio > 20.0,
        "Direct should beat Ring on FC by >20x, got {ratio:.1}x"
    );
}

/// Fig. 2(b): the optimal algorithm flips with collective size on a
/// 128-NPU ring — Ring loses at 1 KB (latency-bound) and wins at 1 GB.
#[test]
fn fig2b_size_crossover() {
    let topo = Topology::ring(
        128,
        LinkSpec::new(Time::from_nanos(30.0), Bandwidth::gbps(150.0)),
        RingOrientation::Bidirectional,
    )
    .unwrap();
    let small = Collective::all_reduce(128, ByteSize::kb(1)).unwrap();
    let large = Collective::all_reduce(128, ByteSize::gb(1)).unwrap();
    let ring_small = sim_time(&topo, BaselineKind::Ring, &small);
    let rhd_small = sim_time(&topo, BaselineKind::Rhd, &small);
    assert!(
        rhd_small < ring_small,
        "RHD should win the latency-bound 1 KB case"
    );
    let ring_large = sim_time(&topo, BaselineKind::Ring, &large);
    let rhd_large = sim_time(&topo, BaselineKind::Rhd, &large);
    assert!(
        ring_large < rhd_large,
        "Ring should win the bandwidth-bound 1 GB case"
    );
}

/// Fig. 15 / Table V: TACOS beats Ring, Direct, and the TACCL-like
/// baseline on the heterogeneous 3D-RFS.
#[test]
fn fig15_tacos_wins_on_heterogeneous() {
    let topo = Topology::rfs_3d(2, 4, 4, Time::from_micros(0.5), [200.0, 100.0, 50.0]).unwrap();
    let coll = Collective::all_reduce(32, ByteSize::mb(256)).unwrap();
    let tacos = tacos_time(&topo, &coll);
    for kind in [
        BaselineKind::Ring,
        BaselineKind::Direct,
        BaselineKind::TacclLike(TacclConfig {
            node_budget: 2_000,
            ..Default::default()
        }),
    ] {
        let name = kind.name();
        let t = sim_time(&topo, kind, &coll);
        assert!(tacos <= t, "{name} ({t}) should not beat tacos ({tacos})");
    }
}

/// Fig. 16: Themis collapses on the asymmetric 3D grid relative to the
/// torus, while TACOS barely degrades (paper: 49% vs 98% of ideal).
#[test]
fn fig16_themis_asymmetry_penalty() {
    let link = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
    let torus = Topology::torus_3d(4, 4, 4, link).unwrap();
    let grid = Topology::hypercube_3d(4, 4, 4, link).unwrap();
    let size = ByteSize::gb(1);
    let coll = Collective::all_reduce(64, size).unwrap();

    let bw = |t: Time| size.as_u64() as f64 / t.as_secs_f64();
    let themis_torus = bw(sim_time(&torus, BaselineKind::Themis { chunks: 4 }, &coll));
    let themis_grid_time = sim_time(&grid, BaselineKind::Themis { chunks: 4 }, &coll);
    let themis_grid = bw(themis_grid_time);
    let chunked = Collective::with_chunking(CollectivePattern::AllReduce, 64, 4, size).unwrap();
    let tacos_grid_time = tacos_time(&grid, &chunked);
    // Themis cannot re-route around the missing wraparound links, so its
    // absolute bandwidth drops on the grid...
    assert!(
        themis_grid < themis_torus * 0.8,
        "Themis should lose bandwidth on the grid ({themis_grid:.2e} vs {themis_torus:.2e})"
    );
    // ...while TACOS stays near the (corner-limited) ideal bound there.
    let ideal = IdealBound::new(&grid).collective_time(CollectivePattern::AllReduce, size);
    let tacos_eff = ideal.as_secs_f64() / tacos_grid_time.as_secs_f64();
    assert!(
        tacos_eff > 0.9,
        "TACOS should stay near-ideal on the grid, got {tacos_eff:.2}"
    );
    assert!(
        tacos_grid_time < themis_grid_time,
        "TACOS should beat Themis on the grid"
    );
}

/// Fig. 17(a): MultiTree saturates with collective size; TACOS keeps
/// scaling (paper: 1.32x average, growing with size).
#[test]
fn fig17a_multitree_saturation() {
    let link = LinkSpec::new(Time::from_micros(0.15), Bandwidth::gbps(16.0));
    let torus = Topology::torus_2d(4, 4, link).unwrap();
    let small = Collective::all_reduce(16, ByteSize::mb(1)).unwrap();
    let large = Collective::all_reduce(16, ByteSize::mb(32)).unwrap();
    let large_chunked =
        Collective::with_chunking(CollectivePattern::AllReduce, 16, 4, ByteSize::mb(32)).unwrap();

    let bw = |size: ByteSize, t: Time| size.as_u64() as f64 / t.as_secs_f64();
    let mt_small = bw(
        ByteSize::mb(1),
        sim_time(&torus, BaselineKind::MultiTree, &small),
    );
    let mt_large = bw(
        ByteSize::mb(32),
        sim_time(&torus, BaselineKind::MultiTree, &large),
    );
    let tacos_large = bw(ByteSize::mb(32), tacos_time(&torus, &large_chunked));
    // MultiTree's bandwidth saturates...
    assert!(mt_large < mt_small * 1.5, "MultiTree should saturate");
    // ...and TACOS overtakes it for large collectives.
    assert!(
        tacos_large > mt_large * 1.2,
        "TACOS ({tacos_large:.2e}) should beat MultiTree ({mt_large:.2e}) by >1.2x"
    );
}

/// Fig. 17(b): C-Cube reaches only ~a third of ideal on DGX-1 (paper:
/// 32.6%); TACOS roughly doubles it (paper: 2.86x).
#[test]
fn fig17b_ccube_inefficiency() {
    let topo =
        Topology::dgx1(LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0))).unwrap();
    let size = ByteSize::gb(1);
    let coll = Collective::all_reduce(8, size).unwrap();
    let ideal = IdealBound::new(&topo).collective_time(CollectivePattern::AllReduce, size);
    let ccube = sim_time(&topo, BaselineKind::CCube { pipeline: 4 }, &coll);
    let ccube_eff = ideal.as_secs_f64() / ccube.as_secs_f64();
    assert!(
        (0.25..0.45).contains(&ccube_eff),
        "C-Cube should land near a third of ideal, got {ccube_eff:.2}"
    );
    let tacos = tacos_time(&topo, &coll);
    let speedup = ccube.as_secs_f64() / tacos.as_secs_f64();
    assert!(
        speedup > 1.5,
        "TACOS should beat C-Cube by >1.5x, got {speedup:.2}x"
    );
}

/// Fig. 19: synthesis time follows the O(n²) trend with high R².
#[test]
fn fig19_quadratic_scaling() {
    use tacos::report::fit_power;
    let mut ns = Vec::new();
    let mut ts = Vec::new();
    for side in [4usize, 6, 8, 12, 16] {
        let topo = Topology::mesh_2d(side, side, spec()).unwrap();
        let n = topo.num_npus();
        let coll = Collective::all_gather(n, ByteSize::mb(64)).unwrap();
        let config = SynthesizerConfig::default().with_record_transfers(false);
        // Median of 3 runs for timing stability.
        let mut secs: Vec<f64> = (0..3)
            .map(|s| {
                let started = std::time::Instant::now();
                Synthesizer::new(config.clone().with_seed(s))
                    .synthesize(&topo, &coll)
                    .unwrap();
                started.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        ns.push(n as f64);
        ts.push(secs[1]);
    }
    let quad = fit_power(&ns, &ts, 2.0);
    assert!(
        quad.r_squared > 0.85,
        "quadratic fit should explain the trend, R² = {:.3}",
        quad.r_squared
    );
}

/// §VI-B.6 / Fig. 18: on the symmetric torus TACOS achieves near-ideal
/// efficiency (paper: 98%+).
#[test]
fn fig18_torus_near_ideal() {
    let topo = Topology::torus_3d(3, 3, 3, spec()).unwrap();
    let size = ByteSize::gb(1);
    let chunked = Collective::with_chunking(CollectivePattern::AllReduce, 27, 4, size).unwrap();
    let tacos = tacos_time(&topo, &chunked);
    let ideal = IdealBound::new(&topo).collective_time(CollectivePattern::AllReduce, size);
    let eff = ideal.as_secs_f64() / tacos.as_secs_f64();
    assert!(
        eff > 0.85,
        "TACOS on a torus should be near-ideal, got {eff:.2}"
    );
}
