//! Static shortest-path routing.
//!
//! Topology-unaware baseline algorithms (e.g. Direct on a Ring) must send
//! between NPUs that share no physical link; the congestion-aware simulator
//! routes such messages over α–β-shortest paths computed here. Ties are
//! broken deterministically (smallest link id) so simulations are
//! reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::ids::{LinkId, NpuId};
use crate::topology::Topology;
use crate::units::{ByteSize, Time};

/// Dijkstra from `src`: cost of the cheapest path to every NPU for messages
/// of `size` (cost per hop = `α + β·size`). Unreachable NPUs get
/// [`Time::MAX`].
pub fn shortest_path_times(topo: &Topology, src: NpuId, size: ByteSize) -> Vec<Time> {
    let mut dist = vec![Time::MAX; topo.num_npus()];
    dist[src.index()] = Time::ZERO;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Time::ZERO, src)));
    while let Some(Reverse((d, node))) = heap.pop() {
        if d > dist[node.index()] {
            continue;
        }
        for &lid in topo.out_links(node) {
            let link = topo.link(lid);
            let next = d + link.cost(size);
            if next < dist[link.dst().index()] {
                dist[link.dst().index()] = next;
                heap.push(Reverse((next, link.dst())));
            }
        }
    }
    dist
}

/// Per-destination next-hop table over α–β-shortest paths.
///
/// `RoutingTable` stores, for every `(current, destination)` pair, the link
/// to take next. It is computed once per (topology, message size) and reused
/// by the simulator for every routed message.
///
/// ```
/// use tacos_topology::{Bandwidth, ByteSize, LinkSpec, NpuId, RingOrientation, Time, Topology};
/// use tacos_topology::routing::{route_path, RoutingTable};
/// let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
/// let ring = Topology::ring(4, spec, RingOrientation::Unidirectional)?;
/// let table = RoutingTable::new(&ring, ByteSize::mb(1));
/// // On a unidirectional 4-ring the way from NPU3 to NPU1 is 3 -> 0 -> 1.
/// let path = route_path(&ring, &table, NpuId::new(3), NpuId::new(1)).unwrap();
/// assert_eq!(path.len(), 2);
/// # Ok::<(), tacos_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    num_npus: usize,
    /// `next[dst][cur]` = link leaving `cur` toward `dst` (`u32::MAX` = none).
    next: Vec<Vec<u32>>,
    /// `cost[dst][cur]` = total path cost from `cur` to `dst`.
    cost: Vec<Vec<Time>>,
}

impl RoutingTable {
    /// Builds the table for messages of `size` bytes.
    pub fn new(topo: &Topology, size: ByteSize) -> Self {
        let n = topo.num_npus();
        let mut next = vec![vec![u32::MAX; n]; n];
        let mut cost = vec![vec![Time::MAX; n]; n];
        // Reverse Dijkstra from every destination, relaxing over in-links.
        for dst in topo.npus() {
            let next_row = &mut next[dst.index()];
            let cost_row = &mut cost[dst.index()];
            cost_row[dst.index()] = Time::ZERO;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((Time::ZERO, dst)));
            while let Some(Reverse((d, node))) = heap.pop() {
                if d > cost_row[node.index()] {
                    continue;
                }
                for &lid in topo.in_links(node) {
                    let link = topo.link(lid);
                    let source = link.src();
                    let cand = d + link.cost(size);
                    let cur = cost_row[source.index()];
                    // Deterministic tie-break: keep the smaller link id.
                    if cand < cur || (cand == cur && lid.raw() < next_row[source.index()]) {
                        cost_row[source.index()] = cand;
                        next_row[source.index()] = lid.raw();
                        if cand < cur {
                            heap.push(Reverse((cand, source)));
                        }
                    }
                }
            }
        }
        RoutingTable {
            num_npus: n,
            next,
            cost,
        }
    }

    /// The next link to take from `cur` toward `dst`, or `None` if `dst` is
    /// unreachable (or `cur == dst`).
    pub fn next_hop(&self, cur: NpuId, dst: NpuId) -> Option<LinkId> {
        let raw = self.next[dst.index()][cur.index()];
        (raw != u32::MAX && cur != dst).then(|| LinkId::new(raw))
    }

    /// Total shortest-path cost from `src` to `dst` ([`Time::MAX`] if
    /// unreachable).
    pub fn path_cost(&self, src: NpuId, dst: NpuId) -> Time {
        self.cost[dst.index()][src.index()]
    }

    /// Number of NPUs this table was built for.
    pub fn num_npus(&self) -> usize {
        self.num_npus
    }
}

/// Full link sequence from `src` to `dst` using `table`, resolving link
/// endpoints through `topo`.
///
/// Returns `None` if `dst` is unreachable from `src`.
pub fn route_path(
    topo: &Topology,
    table: &RoutingTable,
    src: NpuId,
    dst: NpuId,
) -> Option<Vec<LinkId>> {
    if src == dst {
        return Some(Vec::new());
    }
    let mut path = Vec::new();
    let mut cur = src;
    while cur != dst {
        let link = table.next_hop(cur, dst)?;
        if path.len() > topo.num_npus() {
            return None; // defensive: would indicate a routing loop
        }
        path.push(link);
        cur = topo.link(link).dst();
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::topology::TopologyBuilder;
    use crate::units::Bandwidth;

    fn spec(alpha_us: f64, gbps: f64) -> LinkSpec {
        LinkSpec::new(Time::from_micros(alpha_us), Bandwidth::gbps(gbps))
    }

    fn uni_ring(n: usize) -> Topology {
        let mut b = TopologyBuilder::new("ring");
        b.npus(n);
        for i in 0..n {
            b.link(
                NpuId::new(i as u32),
                NpuId::new(((i + 1) % n) as u32),
                spec(0.5, 50.0),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_on_ring() {
        let t = uni_ring(4);
        let d = shortest_path_times(&t, NpuId::new(0), ByteSize::ZERO);
        assert_eq!(d[0], Time::ZERO);
        assert_eq!(d[1], Time::from_micros(0.5));
        assert_eq!(d[2], Time::from_micros(1.0));
        assert_eq!(d[3], Time::from_micros(1.5));
    }

    #[test]
    fn unreachable_is_max() {
        let mut b = TopologyBuilder::new("disc");
        b.npus(3);
        b.link(NpuId::new(0), NpuId::new(1), spec(0.5, 50.0));
        let t = b.build().unwrap();
        let d = shortest_path_times(&t, NpuId::new(0), ByteSize::ZERO);
        assert_eq!(d[2], Time::MAX);
    }

    #[test]
    fn routing_table_paths() {
        let t = uni_ring(4);
        let table = RoutingTable::new(&t, ByteSize::mb(1));
        let path = route_path(&t, &table, NpuId::new(3), NpuId::new(1)).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(t.link(path[0]).src(), NpuId::new(3));
        assert_eq!(t.link(path[0]).dst(), NpuId::new(0));
        assert_eq!(t.link(path[1]).dst(), NpuId::new(1));
        assert_eq!(
            route_path(&t, &table, NpuId::new(2), NpuId::new(2)),
            Some(vec![])
        );
    }

    #[test]
    fn routing_prefers_cheap_links() {
        // 0 -> 1 directly over a slow link, or 0 -> 2 -> 1 over fast links.
        let mut b = TopologyBuilder::new("detour");
        b.npus(3);
        b.link(NpuId::new(0), NpuId::new(1), spec(10.0, 50.0));
        b.link(NpuId::new(0), NpuId::new(2), spec(0.5, 50.0));
        b.link(NpuId::new(2), NpuId::new(1), spec(0.5, 50.0));
        let t = b.build().unwrap();
        // For tiny messages the two-hop detour (1 µs) beats 10 µs direct.
        let table = RoutingTable::new(&t, ByteSize::ZERO);
        let path = route_path(&t, &table, NpuId::new(0), NpuId::new(1)).unwrap();
        assert_eq!(path.len(), 2);
        // For huge messages serialization dominates; direct single hop wins.
        let table = RoutingTable::new(&t, ByteSize::gb(1));
        let path = route_path(&t, &table, NpuId::new(0), NpuId::new(1)).unwrap();
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn routing_cost_matches_dijkstra() {
        let t = uni_ring(5);
        let table = RoutingTable::new(&t, ByteSize::kb(1));
        for src in t.npus() {
            let d = shortest_path_times(&t, src, ByteSize::kb(1));
            for dst in t.npus() {
                assert_eq!(table.path_cost(src, dst), d[dst.index()]);
            }
        }
    }

    #[test]
    fn unreachable_path_is_none() {
        let mut b = TopologyBuilder::new("disc");
        b.npus(2);
        b.link(NpuId::new(0), NpuId::new(1), spec(0.5, 50.0));
        let t = b.build().unwrap();
        let table = RoutingTable::new(&t, ByteSize::ZERO);
        assert!(route_path(&t, &table, NpuId::new(1), NpuId::new(0)).is_none());
        assert_eq!(table.next_hop(NpuId::new(1), NpuId::new(0)), None);
    }
}
