//! # tacos-serve
//!
//! Synthesis-as-a-service: the paper's synthesizer wrapped in a
//! long-lived daemon (`tacos serve`) so repeated collective-algorithm
//! requests — the pattern a training-cluster scheduler produces —
//! amortize synthesis cost across clients and process restarts.
//!
//! The daemon is plain std: a non-blocking accept loop, a bounded
//! synthesis worker pool with admission control and a panic-respawning
//! supervisor, single-flight deduplication of concurrent identical
//! requests (one synthesis, N responses), per-request deadlines,
//! overload protection (bounded request lines, idle timeouts, a
//! connection cap with `retry_after_ms` hints), and a crash-safe warm
//! cache persisted to disk with per-entry checksums and periodic
//! checkpoints. The wire protocol is one JSON object per line in each
//! direction; see [`protocol`].
//!
//! [`bench`] implements `tacos serve-bench`, which replays a scenario
//! grid as a request trace at several concurrency levels and reports
//! throughput, latency percentiles, and per-outcome-class counts.
//! [`faults`] and [`chaos`] implement `tacos chaos`: deterministic
//! fault injection plus the harness that asserts the daemon's
//! operational invariants under it.

#![warn(missing_docs)]

pub mod bench;
pub mod chaos;
mod client;
mod daemon;
pub mod faults;
pub mod protocol;

pub use bench::{build_trace, BenchConfig};
pub use chaos::{ChaosOptions, ChaosReport};
pub use client::{Client, RetriedCall, RetryPolicy};
pub use daemon::{Daemon, DaemonConfig, DaemonHandle, SNAPSHOT_FILE};
pub use faults::FaultPlan;
pub use protocol::{OkBody, Op, Request, Response, StatsBody};
