//! MultiTree-like collective synthesis (Huang et al., ISCA '21; paper
//! §V-A, §VI-B.4).
//!
//! MultiTree builds a height-balanced spanning tree rooted at **every**
//! NPU (BFS with link-load balancing) and broadcasts each root's shard
//! down its tree (All-Gather); Reduce-Scatter reduces up the reversed
//! trees; All-Reduce chains both. Its key limitation — the reason TACOS
//! outpaces it for large collectives (paper Fig. 17a) — is that it moves
//! each NPU's shard as a **single chunk**, so multiple chunks never
//! overlap on a link and bandwidth saturates beyond ~1 MB.

use tacos_collective::algorithm::{
    AlgorithmBuilder, CollectiveAlgorithm, TransferId, TransferKind,
};
use tacos_collective::{ChunkId, Collective, CollectivePattern};
use tacos_topology::{NpuId, Topology};

use crate::error::BaselineError;

/// A spanning tree as parent pointers plus BFS order.
#[derive(Debug, Clone)]
struct SpanningTree {
    root: usize,
    parent: Vec<Option<usize>>,
    bfs_order: Vec<usize>,
}

/// Builds height-balanced BFS spanning trees from every root, greedily
/// preferring links with the lowest accumulated load so the tree set
/// spreads over the physical network.
fn build_trees(topo: &Topology) -> Vec<SpanningTree> {
    let n = topo.num_npus();
    let mut link_load = vec![0u32; topo.num_links()];
    let mut trees = Vec::with_capacity(n);
    for root in 0..n {
        let mut parent = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        depth[root] = 0;
        let mut frontier = vec![root];
        let mut bfs_order = vec![root];
        while !frontier.is_empty() {
            // Collect candidate expansion links from the frontier, sorted
            // by accumulated load for balance.
            let mut candidates: Vec<(u32, usize, usize, usize)> = Vec::new();
            for &v in &frontier {
                for &lid in topo.out_links(NpuId::new(v as u32)) {
                    let link = topo.link(lid);
                    let w = link.dst().index();
                    if depth[w] == usize::MAX {
                        candidates.push((link_load[lid.index()], lid.index(), v, w));
                    }
                }
            }
            candidates.sort_unstable();
            let mut next_frontier = Vec::new();
            for (_, lid, v, w) in candidates {
                if depth[w] != usize::MAX {
                    continue;
                }
                depth[w] = depth[v] + 1;
                parent[w] = Some(v);
                link_load[lid] += 1;
                next_frontier.push(w);
                bfs_order.push(w);
            }
            frontier = next_frontier;
        }
        trees.push(SpanningTree {
            root,
            parent,
            bfs_order,
        });
    }
    trees
}

/// Generates the MultiTree-like algorithm for All-Gather, Reduce-Scatter,
/// or All-Reduce.
///
/// # Errors
/// [`BaselineError::UnsupportedPattern`] for rooted patterns.
pub fn multitree(
    topo: &Topology,
    collective: &Collective,
) -> Result<CollectiveAlgorithm, BaselineError> {
    if topo.num_npus() != collective.num_npus() {
        return Err(BaselineError::NpuCountMismatch {
            topology: topo.num_npus(),
            collective: collective.num_npus(),
        });
    }
    let n = collective.num_npus();
    let chunk_size = collective.total_size().split(n as u64);
    let mut b = AlgorithmBuilder::new("multitree", n, chunk_size, collective.total_size());
    let trees = build_trees(topo);
    match collective.pattern() {
        CollectivePattern::AllGather => {
            for tree in &trees {
                broadcast_down(&mut b, tree, &[]);
            }
        }
        CollectivePattern::ReduceScatter => {
            for tree in &trees {
                reduce_up(&mut b, tree);
            }
        }
        CollectivePattern::AllReduce => {
            let gates: Vec<Vec<TransferId>> =
                trees.iter().map(|tree| reduce_up(&mut b, tree)).collect();
            for (tree, gate) in trees.iter().zip(&gates) {
                broadcast_down(&mut b, tree, gate);
            }
        }
        CollectivePattern::Broadcast { .. }
        | CollectivePattern::Reduce { .. }
        | CollectivePattern::AllToAll
        | CollectivePattern::Gather { .. }
        | CollectivePattern::Scatter { .. } => {
            return Err(BaselineError::UnsupportedPattern {
                baseline: "multitree",
                pattern: collective.pattern().short_name(),
            });
        }
    }
    Ok(b.build())
}

/// Reduces the root's chunk up its tree; returns the transfers into the
/// root (the All-Gather phase's gate).
fn reduce_up(b: &mut AlgorithmBuilder, tree: &SpanningTree) -> Vec<TransferId> {
    let n = tree.parent.len();
    let chunk = ChunkId::new(tree.root as u32);
    // Children deliver before parents forward: walk BFS order backwards.
    let mut into: Vec<Vec<TransferId>> = vec![Vec::new(); n];
    for &v in tree.bfs_order.iter().rev() {
        if let Some(p) = tree.parent[v] {
            let deps = into[v].clone();
            let id = b.push(
                chunk,
                NpuId::new(v as u32),
                NpuId::new(p as u32),
                TransferKind::Reduce,
                deps,
            );
            into[p].push(id);
        }
    }
    into[tree.root].clone()
}

/// Broadcasts the root's chunk down its tree, gated on `entry` at the root.
fn broadcast_down(b: &mut AlgorithmBuilder, tree: &SpanningTree, entry: &[TransferId]) {
    let n = tree.parent.len();
    let chunk = ChunkId::new(tree.root as u32);
    let mut recv: Vec<Vec<TransferId>> = vec![Vec::new(); n];
    recv[tree.root] = entry.to_vec();
    for &v in &tree.bfs_order {
        if let Some(p) = tree.parent[v] {
            let deps = recv[p].clone();
            let id = b.push(
                chunk,
                NpuId::new(p as u32),
                NpuId::new(v as u32),
                TransferKind::Copy,
                deps,
            );
            recv[v] = vec![id];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_sim::Simulator;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time};

    fn mesh() -> Topology {
        let spec = LinkSpec::new(Time::from_micros(0.15), Bandwidth::gbps(16.0));
        Topology::mesh_2d(4, 4, spec).unwrap()
    }

    #[test]
    fn trees_span_all_npus() {
        let t = mesh();
        let trees = build_trees(&t);
        assert_eq!(trees.len(), 16);
        for tree in &trees {
            assert_eq!(tree.bfs_order.len(), 16);
            let orphans = (0..16)
                .filter(|&v| v != tree.root && tree.parent[v].is_none())
                .count();
            assert_eq!(orphans, 0);
        }
    }

    #[test]
    fn trees_are_height_balanced() {
        // BFS trees have minimal depth: on a 4x4 mesh no deeper than the
        // eccentricity of the root (max 6).
        let t = mesh();
        for tree in build_trees(&t) {
            for v in 0..16 {
                let mut depth = 0;
                let mut cur = v;
                while let Some(p) = tree.parent[cur] {
                    cur = p;
                    depth += 1;
                    assert!(depth <= 6, "tree rooted at {} too deep", tree.root);
                }
            }
        }
    }

    #[test]
    fn all_gather_delivers_everything() {
        let t = mesh();
        let coll = Collective::all_gather(16, ByteSize::mb(16)).unwrap();
        let algo = multitree(&t, &coll).unwrap();
        // 16 trees x 15 edges.
        assert_eq!(algo.len(), 240);
        let report = Simulator::new().simulate(&t, &algo).unwrap();
        assert!(report.collective_time() > Time::ZERO);
    }

    #[test]
    fn all_reduce_composes() {
        let t = mesh();
        let coll = Collective::all_reduce(16, ByteSize::mb(16)).unwrap();
        let algo = multitree(&t, &coll).unwrap();
        assert_eq!(algo.len(), 480);
        let reduces = algo
            .transfers()
            .iter()
            .filter(|t| t.kind() == TransferKind::Reduce)
            .count();
        assert_eq!(reduces, 240);
        assert!(Simulator::new().simulate(&t, &algo).is_ok());
    }

    /// The paper's Fig. 17a claim: MultiTree saturates for large
    /// collectives because chunks cannot overlap, while chunk-overlapping
    /// approaches keep scaling.
    #[test]
    fn multitree_saturates_at_large_sizes() {
        let t = mesh();
        let small = Collective::all_reduce(16, ByteSize::mb(1)).unwrap();
        let large = Collective::all_reduce(16, ByteSize::mb(32)).unwrap();
        let bw_small = Simulator::new()
            .simulate(&t, &multitree(&t, &small).unwrap())
            .unwrap()
            .bandwidth_gbps();
        let bw_large = Simulator::new()
            .simulate(&t, &multitree(&t, &large).unwrap())
            .unwrap()
            .bandwidth_gbps();
        // Bandwidth barely improves with 32x the payload.
        assert!(bw_large < bw_small * 2.0);
    }
}
