//! `tacos chaos`: drive a live daemon under a seeded [`FaultPlan`] and
//! assert the serving layer's operational invariants hold.
//!
//! The harness is deterministic end to end: the fault plan is derived
//! from the seed, faults fire on exact job/connection/checkpoint
//! sequence numbers, and requests are issued in a fixed order — so a
//! failing seed reproduces exactly, in CI or at a keyboard.
//!
//! Invariants checked (one phase each):
//!
//! 1. **Worker panic containment** — a synthesis panic fails only its
//!    own flight: the leader *and* any deduplicated follower get a typed
//!    `error`, the pool returns to full strength (visible as
//!    `worker_restarts` in `stats`), and subsequent requests synthesize
//!    normally. Every request gets exactly one response (correlation ids
//!    are echoed and checked).
//! 2. **Checkpoint atomicity** — a checkpoint aborted mid-write reports
//!    a typed `error` and leaves the previous snapshot fully intact;
//!    the next checkpoint succeeds.
//! 3. **Torn-snapshot salvage** — a snapshot truncated mid-entry loads
//!    its valid prefix: a restarted daemon serves every salvaged key
//!    from cache and resynthesizes only the torn one.
//! 4. **Oversized-line protection** — a 10 MiB request line gets a typed
//!    `error` and a closed connection, with the daemon's memory
//!    footprint unaffected (checked via `/proc/self/statm` on Linux).
//! 5. **Overload & retry** — a burst against a tiny queue is partially
//!    rejected with `retry_after_ms` hints, and every request finishes
//!    `ok` within a bounded retry budget; over-cap connections get one
//!    typed `rejected` line and the slot frees when a connection closes.
//! 6. **Bounded residency under eviction** — a trace larger than
//!    `--warm-max-entries` keeps the resident set at the cap (visible as
//!    `warm_entries`/`evictions`/`resident_bytes` in `stats`), evicted
//!    keys re-synthesize to byte-identical deterministic schedules, and
//!    a checkpoint under eviction snapshots exactly the resident set.

use std::io::BufRead;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use tacos_core::{WarmCache, WarmLimits};
use tacos_report::Json;

use crate::client::{Client, RetryPolicy};
use crate::daemon::{Daemon, DaemonConfig, SNAPSHOT_FILE};
use crate::faults::FaultPlan;

/// `tacos chaos` settings.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Seed for [`FaultPlan::from_seed`]; same seed, same run.
    pub seed: u64,
    /// Suppress per-check progress lines on stderr.
    pub quiet: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 1,
            quiet: false,
        }
    }
}

/// What a chaos run verified.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed the run used.
    pub seed: u64,
    /// The derived fault plan, in `--faults` spec syntax.
    pub plan: String,
    /// Every invariant that held, in check order.
    pub passed: Vec<String>,
}

struct Checks {
    passed: Vec<String>,
    quiet: bool,
}

impl Checks {
    fn ensure(
        &mut self,
        held: bool,
        what: &str,
        context: &dyn std::fmt::Debug,
    ) -> Result<(), String> {
        if held {
            if !self.quiet {
                eprintln!("tacos chaos: ok - {what}");
            }
            self.passed.push(what.to_string());
            Ok(())
        } else {
            Err(format!("invariant violated: {what} (context: {context:?})"))
        }
    }
}

fn status(response: &Json) -> Option<&str> {
    response.get("status").and_then(Json::as_str)
}

fn reason(response: &Json) -> &str {
    response
        .get("reason")
        .and_then(Json::as_str)
        .unwrap_or_default()
}

fn echoed_id(response: &Json) -> Option<u64> {
    response.get("id").and_then(Json::as_u64)
}

/// A small, fast, distinct-keyed synthesize request: the seed folds
/// into the synthesizer config and thus the cache key.
fn synth_line(id: u64, seed: u64) -> String {
    format!(
        r#"{{"id":{id},"topology":"mesh:2x2","collective":"all-gather","size":"1MB","seed":{seed}}}"#
    )
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect_with_retry(addr, Duration::from_secs(5)).map_err(|e| format!("connect: {e}"))
}

fn call(client: &mut Client, line: &str) -> Result<Json, String> {
    client.call(line).map_err(|e| format!("call: {e}"))
}

fn temp_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("tacos-chaos-{seed}-{}", std::process::id()))
}

#[cfg(target_os = "linux")]
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

#[cfg(not(target_os = "linux"))]
fn rss_bytes() -> Option<u64> {
    None
}

/// Runs the full chaos suite under the seed's fault plan. Returns what
/// passed, or the first violated invariant as a readable error.
pub fn run(options: &ChaosOptions) -> Result<ChaosReport, String> {
    let plan = FaultPlan::from_seed(options.seed);
    let mut checks = Checks {
        passed: Vec::new(),
        quiet: options.quiet,
    };
    if !options.quiet {
        eprintln!("tacos chaos: seed {} -> fault plan '{plan}'", options.seed);
    }
    let dir = temp_dir(options.seed);
    let _ = std::fs::remove_dir_all(&dir);

    let result = (|| -> Result<(), String> {
        panic_and_checkpoint_phase(&plan, &dir, &mut checks)?;
        salvage_phase(options, &dir, &mut checks)?;
        oversized_line_phase(&mut checks)?;
        overload_phase(&mut checks)?;
        connection_cap_phase(&mut checks)?;
        eviction_phase(&dir, &mut checks)?;
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result?;

    Ok(ChaosReport {
        seed: options.seed,
        plan: plan.to_string(),
        passed: checks.passed,
    })
}

/// Phases 1 + 2: one daemon under the seeded plan — worker panic
/// containment, then checkpoint-abort atomicity.
fn panic_and_checkpoint_phase(
    plan: &FaultPlan,
    dir: &Path,
    checks: &mut Checks,
) -> Result<(), String> {
    let panic_job = plan
        .first_panic_job()
        .expect("seeded plans always schedule a panic");
    let daemon = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 8,
        cache_dir: Some(dir.to_path_buf()),
        faults: plan.clone(),
        quiet: true,
        ..DaemonConfig::default()
    })
    .map_err(|e| format!("spawn: {e}"))?;
    let addr = daemon.addr().to_string();
    let mut client = connect(&addr)?;

    // Serial distinct requests pin job indices: request i is job i.
    for i in 1..=6u64 {
        if i == panic_job {
            // A follower joins the doomed flight mid-stall on a second
            // connection: the panic must fail both, and only both.
            let follower_line = synth_line(100 + i, i);
            let follower_addr = addr.clone();
            let follower = std::thread::spawn(move || -> Result<Json, String> {
                std::thread::sleep(Duration::from_millis(40));
                let mut c = connect(&follower_addr)?;
                call(&mut c, &follower_line)
            });
            let leader = call(&mut client, &synth_line(i, i))?;
            checks.ensure(
                status(&leader) == Some("error")
                    && reason(&leader).contains("panicked")
                    && echoed_id(&leader) == Some(i),
                "a worker panic fails its own flight with a typed error",
                &leader,
            )?;
            let follower = follower.join().expect("follower thread")?;
            checks.ensure(
                status(&follower) == Some("error")
                    && reason(&follower).contains("panicked")
                    && echoed_id(&follower) == Some(100 + i),
                "a deduplicated follower of a panicked flight gets its own typed error",
                &follower,
            )?;
        } else {
            let response = call(&mut client, &synth_line(i, i))?;
            checks.ensure(
                status(&response) == Some("ok") && echoed_id(&response) == Some(i),
                "requests around an injected fault synthesize normally",
                &response,
            )?;
        }
    }

    // The supervisor must bring the pool back to strength and say so.
    let deadline = Instant::now() + Duration::from_secs(5);
    while daemon.stats().worker_restarts == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    checks.ensure(
        daemon.stats().worker_restarts == 1,
        "the panicked worker is respawned and counted in stats",
        &daemon.stats().worker_restarts,
    )?;

    // The panicked key is not poisoned: re-requesting it synthesizes.
    let redo = call(&mut client, &synth_line(7, panic_job))?;
    checks.ensure(
        status(&redo) == Some("ok") && redo.get("cache_hit").and_then(Json::as_bool) == Some(false),
        "re-requesting the panicked key synthesizes on the recovered pool",
        &redo,
    )?;
    let warm = call(&mut client, &synth_line(8, 1))?;
    checks.ensure(
        status(&warm) == Some("ok") && warm.get("cache_hit").and_then(Json::as_bool) == Some(true),
        "earlier successes stayed cached across the panic",
        &warm,
    )?;
    let pong = call(&mut client, r#"{"id":9,"op":"ping"}"#)?;
    checks.ensure(
        status(&pong) == Some("pong") && echoed_id(&pong) == Some(9),
        "responses stay aligned one-to-one with requests (no strays)",
        &pong,
    )?;
    let stats = daemon.stats();
    checks.ensure(
        stats.synthesized == 6 && stats.errors == 2 && stats.rejected == 0,
        "exactly the injected flight failed: 6 syntheses, 2 typed errors",
        &(stats.synthesized, stats.errors, stats.rejected),
    )?;

    // Checkpoint atomicity: the plan aborts checkpoint attempt 2.
    let snapshot = dir.join(SNAPSHOT_FILE);
    let cp1 = call(&mut client, r#"{"id":20,"op":"checkpoint"}"#)?;
    checks.ensure(
        status(&cp1) == Some("checkpointed")
            && cp1.get("entries").and_then(Json::as_u64) == Some(6),
        "checkpoint 1 persists all six warm entries",
        &cp1,
    )?;
    let cp2 = call(&mut client, r#"{"id":21,"op":"checkpoint"}"#)?;
    checks.ensure(
        status(&cp2) == Some("error") && reason(&cp2).contains("aborted mid-write"),
        "an aborted checkpoint reports a typed error",
        &cp2,
    )?;
    let survived = WarmCache::load_from(&snapshot)
        .map_err(|e| format!("snapshot after aborted checkpoint: {e}"))?;
    checks.ensure(
        survived.is_clean() && survived.entries_loaded == 6,
        "a checkpoint killed mid-write leaves the previous snapshot intact",
        &(survived.entries_loaded, survived.salvaged),
    )?;
    let cp3 = call(&mut client, r#"{"id":22,"op":"checkpoint"}"#)?;
    checks.ensure(
        status(&cp3) == Some("checkpointed") && daemon.stats().checkpoints == 2,
        "the checkpoint after the aborted one succeeds",
        &cp3,
    )?;

    let persisted = daemon.stop().map_err(|e| format!("stop: {e}"))?;
    checks.ensure(
        persisted == 6,
        "shutdown persists the full warm cache",
        &persisted,
    )?;
    Ok(())
}

/// Phase 3: tear the snapshot inside its last entry, restart, and prove
/// the valid prefix is salvaged (cache hits) with exactly one
/// resynthesis for the torn key.
fn salvage_phase(options: &ChaosOptions, dir: &Path, checks: &mut Checks) -> Result<(), String> {
    let path = dir.join(SNAPSHOT_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read snapshot: {e}"))?;

    // Walk the format (3 header lines, then length-prefixed entries) to
    // find where the last entry's record begins, and cut inside it.
    let mut offset = 0usize;
    for _ in 0..3 {
        offset += text[offset..]
            .find('\n')
            .ok_or("snapshot header truncated")?
            + 1;
    }
    let mut last_entry_start = offset;
    for _ in 0..6 {
        last_entry_start = offset;
        let header_end = offset
            + text[offset..]
                .find('\n')
                .ok_or("snapshot entry truncated")?;
        let compact_len: usize = text[offset..header_end]
            .split(' ')
            .nth(2)
            .and_then(|l| l.parse().ok())
            .ok_or("snapshot entry header unparseable")?;
        offset = header_end + 1 + compact_len;
    }
    let cut = last_entry_start + 1 + (options.seed as usize % 8);
    std::fs::write(&path, &text.as_bytes()[..cut]).map_err(|e| format!("truncate: {e}"))?;

    let report = WarmCache::load_from(&path).map_err(|e| format!("salvage load: {e}"))?;
    checks.ensure(
        report.salvaged && report.entries_loaded == 5 && report.entries_expected == 6,
        "a snapshot torn mid-entry salvages exactly the valid prefix",
        &(
            report.entries_loaded,
            report.entries_expected,
            &report.detail,
        ),
    )?;

    let daemon = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(dir.to_path_buf()),
        quiet: true,
        ..DaemonConfig::default()
    })
    .map_err(|e| format!("respawn: {e}"))?;
    let mut client = connect(&daemon.addr().to_string())?;
    let mut hits = 0u64;
    for i in 1..=6u64 {
        let response = call(&mut client, &synth_line(30 + i, i))?;
        checks.ensure(
            status(&response) == Some("ok"),
            "every key is servable after a salvaged restart",
            &response,
        )?;
        if response.get("cache_hit").and_then(Json::as_bool) == Some(true) {
            hits += 1;
        }
    }
    let stats = daemon.stats();
    checks.ensure(
        hits == 5 && stats.synthesized == 1,
        "salvaged keys are cache hits; only the torn key resynthesizes",
        &(hits, stats.synthesized),
    )?;
    daemon.stop().map_err(|e| format!("stop: {e}"))?;
    Ok(())
}

/// Phase 4: a 10 MiB request line is refused with a typed error, the
/// connection is closed, and daemon memory stays flat.
fn oversized_line_phase(checks: &mut Checks) -> Result<(), String> {
    let daemon = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        quiet: true,
        ..DaemonConfig::default()
    })
    .map_err(|e| format!("spawn: {e}"))?;
    let mut client = connect(&daemon.addr().to_string())?;

    let oversized = "x".repeat(10 << 20);
    let rss_before = rss_bytes();
    let response = call(&mut client, &oversized)?;
    checks.ensure(
        status(&response) == Some("error") && reason(&response).contains("exceeds"),
        "a 10 MiB request line gets a typed error naming the cap",
        &response,
    )?;
    let followup = client.call(r#"{"op":"ping"}"#);
    checks.ensure(
        followup.is_err(),
        "the connection is closed after an oversized line",
        &followup.map(|r| r.to_string()),
    )?;
    // Let the connection thread finish and free its bounded buffer.
    std::thread::sleep(Duration::from_millis(200));
    if let (Some(before), Some(after)) = (rss_before, rss_bytes()) {
        checks.ensure(
            after.saturating_sub(before) < 8 << 20,
            "daemon RSS is unaffected by the oversized line (bounded buffering)",
            &(before, after),
        )?;
    }
    drop(oversized);
    daemon.stop().map_err(|e| format!("stop: {e}"))?;
    Ok(())
}

/// Phase 5a: a burst against a tiny queue — rejections carry retry
/// hints and every request lands `ok` within the retry budget.
fn overload_phase(checks: &mut Checks) -> Result<(), String> {
    let daemon = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        retry_after_ms: 10,
        // Stall the first two jobs so the burst reliably overflows the
        // depth-1 queue.
        faults: FaultPlan::none().with_stall(1, 250).with_stall(2, 250),
        quiet: true,
        ..DaemonConfig::default()
    })
    .map_err(|e| format!("spawn: {e}"))?;
    let addr = daemon.addr().to_string();
    let policy = RetryPolicy {
        max_retries: 10,
        base: Duration::from_millis(25),
        max: Duration::from_millis(300),
    };

    let barrier = Barrier::new(6);
    let outcomes: Vec<Result<(String, u32), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6u64)
            .map(|t| {
                let addr = &addr;
                let barrier = &barrier;
                let policy = &policy;
                scope.spawn(move || -> Result<(String, u32), String> {
                    let mut client = connect(addr)?;
                    barrier.wait();
                    let call = client
                        .call_with_retry(&synth_line(50 + t, 50 + t), policy)
                        .map_err(|e| format!("retry call: {e}"))?;
                    Ok((
                        status(&call.response).unwrap_or("?").to_string(),
                        call.retries,
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst thread"))
            .collect()
    });

    let mut total_retries = 0u32;
    for outcome in &outcomes {
        let (final_status, retries) = outcome.as_ref().map_err(|e| e.clone())?;
        checks.ensure(
            final_status == "ok",
            "every burst request eventually succeeds within its retry budget",
            &(final_status, retries),
        )?;
        total_retries += retries;
    }
    let stats = daemon.stats();
    checks.ensure(
        stats.rejected >= 1 && total_retries >= 1,
        "the tiny queue rejected part of the burst and retries absorbed it",
        &(stats.rejected, total_retries),
    )?;
    daemon.stop().map_err(|e| format!("stop: {e}"))?;
    Ok(())
}

/// Phase 6: a capped daemon under a trace larger than its budget —
/// residency stays bounded, evicted keys re-synthesize to identical
/// deterministic schedules, and checkpoints persist only the resident
/// set.
fn eviction_phase(dir: &Path, checks: &mut Checks) -> Result<(), String> {
    let dir = dir.join("eviction");
    let daemon = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_dir: Some(dir.clone()),
        warm_limits: WarmLimits {
            max_entries: 3,
            max_bytes: 0,
        },
        quiet: true,
        ..DaemonConfig::default()
    })
    .map_err(|e| format!("spawn: {e}"))?;
    let mut client = connect(&daemon.addr().to_string())?;

    // A trace of 8 distinct keys against a 3-entry cap; remember each
    // schedule's deterministic completion time.
    let mut times = Vec::new();
    for i in 1..=8u64 {
        let response = call(&mut client, &synth_line(60 + i, 300 + i))?;
        checks.ensure(
            status(&response) == Some("ok") && echoed_id(&response) == Some(60 + i),
            "a trace over the cap still answers every request ok",
            &response,
        )?;
        times.push(response.get("collective_time_ps").and_then(Json::as_u64));
    }
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let warm_entries = stats
        .get("warm_entries")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let evictions = stats.get("evictions").and_then(Json::as_u64).unwrap_or(0);
    checks.ensure(
        (1..=3).contains(&warm_entries)
            && evictions == 8 - warm_entries
            && stats.get("resident_bytes").and_then(Json::as_u64).is_some(),
        "residency stays at the cap and evictions are counted on the wire",
        &stats,
    )?;

    // Every evicted key re-synthesizes to the identical schedule: the
    // synthesis is deterministic per seed, so the completion time must
    // match the first pass exactly.
    for i in 1..=8u64 {
        let redo = call(&mut client, &synth_line(70 + i, 300 + i))?;
        checks.ensure(
            status(&redo) == Some("ok")
                && redo.get("collective_time_ps").and_then(Json::as_u64) == times[(i - 1) as usize],
            "an evicted key re-synthesizes to the identical deterministic schedule",
            &redo,
        )?;
    }
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    let resident = stats
        .get("warm_entries")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    checks.ensure(
        (1..=3).contains(&resident)
            && stats.get("evictions").and_then(Json::as_u64).unwrap_or(0) > evictions,
        "re-serving the trace keeps residency bounded while evictions grow",
        &stats,
    )?;

    // A checkpoint under eviction writes exactly the resident set, and
    // it reloads clean.
    let cp = call(&mut client, r#"{"id":90,"op":"checkpoint"}"#)?;
    checks.ensure(
        status(&cp) == Some("checkpointed")
            && cp.get("entries").and_then(Json::as_u64) == Some(resident),
        "a checkpoint under eviction persists only the resident set",
        &(&cp, resident),
    )?;
    let report = WarmCache::load_from(dir.join(SNAPSHOT_FILE))
        .map_err(|e| format!("snapshot after eviction: {e}"))?;
    checks.ensure(
        report.is_clean() && report.entries_loaded as u64 == resident,
        "the under-eviction snapshot reloads clean with only resident entries",
        &(report.entries_loaded, report.salvaged),
    )?;
    daemon.stop().map_err(|e| format!("stop: {e}"))?;
    Ok(())
}

/// Phase 5b: the connection cap rejects with a retry hint, and the slot
/// frees as soon as a connection closes.
fn connection_cap_phase(checks: &mut Checks) -> Result<(), String> {
    let daemon = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: 2,
        retry_after_ms: 25,
        quiet: true,
        ..DaemonConfig::default()
    })
    .map_err(|e| format!("spawn: {e}"))?;
    let addr = daemon.addr().to_string();

    let mut first = connect(&addr)?;
    call(&mut first, r#"{"op":"ping"}"#)?;
    let mut second = connect(&addr)?;
    call(&mut second, r#"{"op":"ping"}"#)?;

    // The third connection is told to go away — one typed line, with
    // the hint, read without sending anything.
    let third = TcpStream::connect(&addr).map_err(|e| format!("third connect: {e}"))?;
    let mut reader = std::io::BufReader::new(third);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read rejection: {e}"))?;
    let rejection = Json::parse(line.trim()).map_err(|e| format!("parse rejection: {e}"))?;
    checks.ensure(
        status(&rejection) == Some("rejected")
            && rejection.get("retry_after_ms").and_then(Json::as_u64) == Some(25)
            && reason(&rejection).contains("connection limit"),
        "an over-cap connection gets one typed rejected line with a retry hint",
        &rejection,
    )?;

    // Freeing a slot lets a retrying client in.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut admitted = false;
    while Instant::now() < deadline {
        match Client::connect(&addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.call(r#"{"op":"ping"}"#).map_err(|e| e.to_string()))
        {
            Ok(response) if status(&response) == Some("pong") => {
                admitted = true;
                break;
            }
            Ok(response) if status(&response) == Some("rejected") => {
                let hint = response
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(25);
                std::thread::sleep(Duration::from_millis(hint));
            }
            Ok(response) => {
                return Err(format!("unexpected response while retrying: {response:?}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    checks.ensure(
        admitted,
        "a freed slot admits a retrying connection within its hint cadence",
        &admitted,
    )?;
    daemon.stop().map_err(|e| format!("stop: {e}"))?;
    Ok(())
}
