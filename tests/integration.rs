//! Cross-crate integration: synthesize → validate → simulate across every
//! topology family and collective pattern.

use tacos::prelude::*;
use tacos_collective::algorithm::validate_links;
use tacos_collective::CollectivePattern;
use tacos_topology::{Bandwidth, RingOrientation};

fn spec() -> LinkSpec {
    LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
}

fn every_topology() -> Vec<Topology> {
    vec![
        Topology::ring(6, spec(), RingOrientation::Unidirectional).unwrap(),
        Topology::ring(6, spec(), RingOrientation::Bidirectional).unwrap(),
        Topology::fully_connected(5, spec()).unwrap(),
        Topology::mesh_2d(3, 4, spec()).unwrap(),
        Topology::torus_2d(3, 3, spec()).unwrap(),
        Topology::torus_3d(2, 3, 2, spec()).unwrap(),
        Topology::hypercube_3d(2, 2, 3, spec()).unwrap(),
        Topology::binary_hypercube(3, spec()).unwrap(),
        Topology::switch(6, spec(), 2).unwrap(),
        Topology::switch_2d(4, 3, Time::from_micros(0.5), [300.0, 25.0]).unwrap(),
        Topology::rfs_3d(2, 3, 2, Time::from_micros(0.5), [200.0, 100.0, 50.0]).unwrap(),
        Topology::dragonfly(
            3,
            4,
            spec(),
            LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(25.0)),
        )
        .unwrap(),
        Topology::dgx1(LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0))).unwrap(),
    ]
}

/// Invariants 1–5 of DESIGN.md §6 on every topology for every pattern.
#[test]
fn synthesis_is_valid_on_every_topology() {
    let sim = Simulator::new();
    for topo in every_topology() {
        let n = topo.num_npus();
        let patterns = [
            CollectivePattern::AllGather,
            CollectivePattern::ReduceScatter,
            CollectivePattern::AllReduce,
            CollectivePattern::Broadcast {
                root: NpuId::new(0),
            },
            CollectivePattern::Reduce {
                root: NpuId::new((n - 1) as u32),
            },
        ];
        for pattern in patterns {
            let coll = Collective::with_chunking(pattern, n, 1, ByteSize::mb(n as u64)).unwrap();
            let result = Synthesizer::new(SynthesizerConfig::default().with_seed(3))
                .synthesize(&topo, &coll)
                .unwrap_or_else(|e| panic!("{}/{pattern}: {e}", topo.name()));
            let algo = result.algorithm();
            let ctx = format!("{} / {pattern}", topo.name());
            algo.validate_contention_free()
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            algo.validate_causal()
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            validate_links(algo, &topo).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let report = sim.simulate(&topo, algo).unwrap();
            assert_eq!(
                report.collective_time(),
                result.collective_time(),
                "{ctx}: simulated != planned"
            );
        }
    }
}

/// Postcondition check by replay: every NPU ends with exactly the chunks
/// its pattern demands.
#[test]
fn postconditions_hold_after_synthesis() {
    for topo in every_topology() {
        let n = topo.num_npus();
        let coll = Collective::all_gather(n, ByteSize::mb(n as u64)).unwrap();
        let result = Synthesizer::new(SynthesizerConfig::default().with_seed(11))
            .synthesize(&topo, &coll)
            .unwrap();
        let mut holds: Vec<std::collections::HashSet<u32>> = (0..n)
            .map(|i| std::collections::HashSet::from([i as u32]))
            .collect();
        let mut transfers: Vec<_> = result.algorithm().transfers().iter().collect();
        transfers.sort_by_key(|t| t.start());
        for t in transfers {
            assert!(
                holds[t.src().index()].contains(&t.chunk().raw()),
                "{}: chunk {} sent from {} before it arrived",
                topo.name(),
                t.chunk(),
                t.src()
            );
            holds[t.dst().index()].insert(t.chunk().raw());
        }
        for (i, h) in holds.iter().enumerate() {
            assert_eq!(h.len(), n, "{}: NPU{i} incomplete", topo.name());
        }
    }
}

/// Reduction completeness (invariant 4): for Reduce-Scatter, each chunk's
/// transfers form an in-tree spanning all NPUs rooted at its owner.
#[test]
fn reduce_scatter_trees_span_all_npus() {
    for topo in every_topology() {
        let n = topo.num_npus();
        let coll = Collective::reduce_scatter(n, ByteSize::mb(n as u64)).unwrap();
        let result = Synthesizer::new(SynthesizerConfig::default().with_seed(5))
            .synthesize(&topo, &coll)
            .unwrap();
        for chunk in 0..n as u32 {
            let senders: Vec<_> = result
                .algorithm()
                .transfers()
                .iter()
                .filter(|t| t.chunk().raw() == chunk)
                .map(|t| t.src().raw())
                .collect();
            assert_eq!(senders.len(), n - 1, "{}: chunk {chunk}", topo.name());
            let unique: std::collections::HashSet<_> = senders.iter().collect();
            assert_eq!(unique.len(), n - 1, "{}: duplicate partial", topo.name());
            assert!(
                !senders.contains(&chunk),
                "{}: owner sent its own reduction away",
                topo.name()
            );
        }
    }
}

/// All baselines simulate successfully on their supported topologies.
#[test]
fn baselines_simulate_everywhere_supported() {
    use tacos::baselines::{BaselineAlgorithm, BaselineKind, TacclConfig};
    let sim = Simulator::new();
    for topo in every_topology() {
        let n = topo.num_npus();
        let coll = Collective::all_reduce(n, ByteSize::mb(n as u64)).unwrap();
        let mut kinds = vec![
            BaselineKind::RingUnidirectional,
            BaselineKind::Ring,
            BaselineKind::RingEmbedded { max_rings: 2 },
            BaselineKind::Direct,
            BaselineKind::MultiTree,
            BaselineKind::Dbt { pipeline: 2 },
            BaselineKind::TacclLike(TacclConfig {
                node_budget: 200,
                ..Default::default()
            }),
        ];
        if n.is_power_of_two() {
            kinds.push(BaselineKind::Rhd);
        }
        if !topo.dims().is_empty() {
            kinds.push(BaselineKind::BlueConnect { chunks: 2 });
            kinds.push(BaselineKind::Themis { chunks: 2 });
        }
        for kind in kinds {
            let name = kind.name();
            let algo = BaselineAlgorithm::new(kind)
                .generate(&topo, &coll)
                .unwrap_or_else(|e| panic!("{} / {name}: {e}", topo.name()));
            let report = sim
                .simulate(&topo, &algo)
                .unwrap_or_else(|e| panic!("{} / {name}: {e}", topo.name()));
            assert!(
                report.collective_time() > Time::ZERO,
                "{} / {name}",
                topo.name()
            );
        }
    }
}

/// The ideal bound is never beaten, by anyone (invariant of §V-A).
#[test]
fn nothing_beats_the_ideal_bound() {
    use tacos::baselines::{BaselineAlgorithm, BaselineKind, IdealBound};
    let sim = Simulator::new();
    for topo in every_topology() {
        let n = topo.num_npus();
        let size = ByteSize::mb(64);
        let coll = Collective::all_reduce(n, size).unwrap();
        let bound = IdealBound::new(&topo).lower_bound(CollectivePattern::AllReduce, size);
        let tacos = Synthesizer::new(SynthesizerConfig::default().with_attempts(4))
            .synthesize(&topo, &coll)
            .unwrap()
            .collective_time();
        assert!(
            tacos >= bound,
            "{}: tacos {tacos} < bound {bound}",
            topo.name()
        );
        let ring = BaselineAlgorithm::new(BaselineKind::Ring)
            .generate(&topo, &coll)
            .unwrap();
        let ring_time = sim.simulate(&topo, &ring).unwrap().collective_time();
        assert!(
            ring_time >= bound,
            "{}: ring beats the strict bound",
            topo.name()
        );
    }
}

/// The CLI-facing facade re-exports compose (compile-level test).
#[test]
fn facade_prelude_is_complete() {
    let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::mesh_2d(2, 2, spec).unwrap();
    let coll = Collective::all_reduce(4, ByteSize::mb(4)).unwrap();
    let result = Synthesizer::default().synthesize(&topo, &coll).unwrap();
    let report = Simulator::new()
        .simulate(&topo, result.algorithm())
        .unwrap();
    assert!(report.bandwidth_gbps() > 0.0);
    let _ten: TimeExpandedNetwork = TimeExpandedNetwork::new(&topo, ByteSize::mb(1)).unwrap();
    let _ = SimConfig::default();
    let _ = SimReport::clone(&report);
    let _ = BaselineKind::Ring;
    let _ = IdealBound::new(&topo);
    let _: BaselineAlgorithm = BaselineAlgorithm::new(BaselineKind::Direct);
    let _ = CollectiveAlgorithm::clone(result.algorithm());
    let _ = Chunk {
        id: ChunkId::new(0),
        size: ByteSize::mb(1),
    };
    let _: SynthesisResult = result;
}
