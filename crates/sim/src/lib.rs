//! # tacos-sim
//!
//! The congestion-aware analytical network simulator used to evaluate
//! collective algorithms (paper §V-C, "Network Simulation Backend").
//!
//! Every link carries a FIFO message queue and serves **one message at a
//! time** at `α + β·size`; contending messages serialize, which is the
//! first-order congestion model behind the paper's heat maps (Figs. 1, 15b)
//! and utilization timelines (Figs. 16b, 18). Transfers without an assigned
//! physical link are routed over static α–β-shortest paths with
//! store-and-forward hops.
//!
//! The simulator consumes the same
//! [`CollectiveAlgorithm`](tacos_collective::algorithm::CollectiveAlgorithm)
//! IR the synthesizer and all baselines produce, so every algorithm in the
//! workspace is evaluated under identical network assumptions.

#![warn(missing_docs)]

mod error;
mod report;
mod simulator;

pub use error::SimError;
pub use report::{BusyInterval, LinkLoadStats, SimReport, TimelineSegment};
pub use simulator::{RouteModel, SimConfig, Simulator};
