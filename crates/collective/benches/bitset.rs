//! Criterion microbenchmark: ChunkSet intersection picking — the word-wise
//! AND scan at the heart of every link-chunk match (DESIGN.md §4). The
//! start parameter is a circular *bit* offset (see PERF.md on the
//! low-bit-bias fix); the matching core runs the same kernel over
//! ChunkMatrix rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tacos_collective::{ChunkId, ChunkSet};

fn bench_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    for bits in [256usize, 4096, 65536] {
        let mut holds = ChunkSet::new(bits);
        let mut needs = ChunkSet::new(bits);
        for i in (0..bits).step_by(7) {
            holds.insert(ChunkId::new(i as u32));
        }
        for i in (0..bits).step_by(11) {
            needs.insert(ChunkId::new(i as u32));
        }
        group.bench_with_input(
            BenchmarkId::new("pick_intersection", bits),
            &bits,
            |b, _| {
                let mut start = 0usize;
                b.iter(|| {
                    start = start.wrapping_add(13);
                    holds.pick_intersection(&needs, start)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bitset);
criterion_main!(benches);
