//! **Fig. 19** — TACOS synthesis-time scaling on homogeneous 2D Mesh and
//! 3D Hypercube grids, with a quadratic O(n²) fit and R² (paper: R² ≈
//! 0.996/0.994), plus the TACOS-vs-TACCL synthesis-time gap at small
//! scale (paper: 10³–10⁵×).
//!
//! The default sweep reaches ~1K NPUs in seconds; `--large` pushes to
//! several thousand (the paper runs to 40K NPUs in 2.52 h on 64 threads —
//! see DESIGN.md §2 for the scale substitution).

use std::time::Instant;

use tacos_baselines::{taccl::taccl_like, TacclConfig};
use tacos_bench::experiments::{default_spec, write_results_csv};
use tacos_collective::Collective;
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_report::{fit_power, Table};
use tacos_topology::{ByteSize, Topology};

fn synth_seconds(topo: &Topology) -> f64 {
    let coll = Collective::all_gather(topo.num_npus(), ByteSize::mb(1024)).unwrap();
    let config = SynthesizerConfig::default()
        .with_record_transfers(false)
        .with_seed(1);
    let started = Instant::now();
    Synthesizer::new(config).synthesize(topo, &coll).unwrap();
    started.elapsed().as_secs_f64()
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let mesh_sides: &[usize] = if large {
        &[4, 8, 12, 16, 24, 32, 48, 64]
    } else {
        &[4, 8, 12, 16, 24, 32]
    };
    let cube_sides: &[usize] = if large {
        &[2, 3, 4, 6, 8, 10, 13, 16]
    } else {
        &[2, 3, 4, 6, 8, 10]
    };

    println!("=== Fig. 19: synthesis-time scaling ===\n");
    let mut csv = vec![vec![
        "topology".to_string(),
        "npus".into(),
        "synthesis_seconds".into(),
    ]];

    for (family, sides) in [("Mesh2D", mesh_sides), ("Hypercube3D", cube_sides)] {
        let mut ns = Vec::new();
        let mut ts = Vec::new();
        let mut table = Table::new(vec!["topology", "#NPUs", "synthesis (s)"]);
        for &s in sides {
            let topo = match family {
                "Mesh2D" => Topology::mesh_2d(s, s, default_spec()).unwrap(),
                _ => Topology::hypercube_3d(s, s, s, default_spec()).unwrap(),
            };
            let n = topo.num_npus();
            let secs = synth_seconds(&topo);
            table.row(vec![
                topo.name().into(),
                n.to_string(),
                format!("{secs:.4}"),
            ]);
            csv.push(vec![family.into(), n.to_string(), format!("{secs}")]);
            ns.push(n as f64);
            ts.push(secs);
        }
        print!("{table}");
        let fit = fit_power(&ns, &ts, 2.0);
        println!(
            "{family}: synthesis time ≈ {:.3e} · n²  (R² = {:.4})\n",
            fit.coefficient, fit.r_squared
        );
    }

    println!("--- TACOS vs TACCL-like synthesis time (2D Mesh, small scale) ---");
    let mut table = Table::new(vec!["#NPUs", "TACOS (ms)", "TACCL (ms)", "gap"]);
    for side in [2usize, 3, 4, 5, 6] {
        let topo = Topology::mesh_2d(side, side, default_spec()).unwrap();
        let n = topo.num_npus();
        let coll = Collective::all_gather(n, ByteSize::mb(64)).unwrap();
        let started = Instant::now();
        Synthesizer::new(SynthesizerConfig::default())
            .synthesize(&topo, &coll)
            .unwrap();
        let tacos_ms = started.elapsed().as_secs_f64() * 1e3;
        // Budget grows with the search space, as an ILP's effort would.
        let config = TacclConfig {
            node_budget: 200u64 * (n as u64).pow(2),
            width: 4,
            ..Default::default()
        };
        let started = Instant::now();
        taccl_like(&topo, &coll, &config).unwrap();
        let taccl_ms = started.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            n.to_string(),
            format!("{tacos_ms:.3}"),
            format!("{taccl_ms:.3}"),
            format!("{:.0}x", taccl_ms / tacos_ms.max(1e-6)),
        ]);
        csv.push(vec![
            "taccl-gap".into(),
            n.to_string(),
            format!("{taccl_ms}"),
        ]);
    }
    print!("{table}");
    write_results_csv("fig19_scalability.csv", &csv);
}
