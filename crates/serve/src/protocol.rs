//! The `tacos serve` wire protocol: one JSON object per line in each
//! direction.
//!
//! Requests reuse the evaluation layer's spec vocabulary wholesale — the
//! `topology`, `collective`, `size`, and `mechanism` fields accept
//! exactly the strings a scenario TOML accepts (`mesh:8x8`,
//! `all-reduce`, `64MB`, `tacos:chunks=4`), so a request is a scenario
//! point that arrives over a socket instead of a grid. Responses carry a
//! `status` discriminant (`ok`, `rejected`, `deadline`, `error`, plus
//! the control-op acknowledgements) and `ok` payloads report the same
//! metrics a scenario CSV row would.

use tacos_report::Json;
use tacos_scenario::LinkAxis;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Synthesize (or serve from cache) one collective algorithm.
    Synthesize,
    /// Report the daemon's counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Persist the warm cache to the cache directory now.
    Checkpoint,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<u64>,
    /// The operation; defaults to [`Op::Synthesize`].
    pub op: Op,
    /// Topology spec (`mesh:3x3`, `ring:8`, ... — the scenario
    /// vocabulary). Required for synthesize requests.
    pub topology: String,
    /// Collective pattern name. Defaults to `all-reduce`.
    pub collective: String,
    /// Collective size label (`64MB`, `1.5GB`, ...). Defaults to `64MB`.
    pub size: String,
    /// Mechanism spec for [`tacos_workload::Mechanism::parse`].
    /// Defaults to `tacos`.
    pub mechanism: String,
    /// Chunking factor per NPU. Defaults to 1.
    pub chunks: usize,
    /// Link parameters for homogeneous topology constructors.
    pub link: LinkAxis,
    /// Synthesizer seed override.
    pub seed: Option<u64>,
    /// Best-of-N attempts override.
    pub attempts: Option<usize>,
    /// Low-cost-link prioritization override.
    pub prefer_cheap_links: Option<bool>,
    /// Per-request deadline in milliseconds; `None` falls back to the
    /// daemon's `--deadline-ms` default (if any).
    pub deadline_ms: Option<u64>,
    /// Whether the `ok` response should embed the algorithm in the
    /// compact text format.
    pub include_algorithm: bool,
}

impl Default for Request {
    fn default() -> Self {
        Request {
            id: None,
            op: Op::Synthesize,
            topology: String::new(),
            collective: "all-reduce".into(),
            size: "64MB".into(),
            mechanism: "tacos".into(),
            chunks: 1,
            link: LinkAxis::default_paper(),
            seed: None,
            attempts: None,
            prefer_cheap_links: None,
            deadline_ms: None,
            include_algorithm: false,
        }
    }
}

impl Request {
    /// Parses one request line. Unknown fields are rejected — a typoed
    /// key silently falling back to a default would serve the wrong
    /// algorithm, so the protocol is strict.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Json::parse(line)?;
        let obj = value
            .as_object()
            .ok_or_else(|| "request must be a JSON object".to_string())?;
        let mut req = Request::default();
        for (key, field) in obj {
            match key.as_str() {
                "id" => {
                    req.id = Some(
                        field
                            .as_u64()
                            .ok_or("'id' must be a non-negative integer")?,
                    )
                }
                "op" => {
                    let op = field.as_str().ok_or("'op' must be a string")?;
                    req.op = match op {
                        "synthesize" => Op::Synthesize,
                        "stats" => Op::Stats,
                        "ping" => Op::Ping,
                        "checkpoint" => Op::Checkpoint,
                        "shutdown" => Op::Shutdown,
                        other => return Err(format!("unknown op '{other}'")),
                    };
                }
                "topology" => {
                    req.topology = field.as_str().ok_or("'topology' must be a string")?.into()
                }
                "collective" => {
                    req.collective = field
                        .as_str()
                        .ok_or("'collective' must be a string")?
                        .into()
                }
                "size" => req.size = field.as_str().ok_or("'size' must be a string")?.into(),
                "mechanism" => {
                    req.mechanism = field.as_str().ok_or("'mechanism' must be a string")?.into()
                }
                "chunks" => {
                    let v = field
                        .as_u64()
                        .ok_or("'chunks' must be a positive integer")?;
                    if v == 0 {
                        return Err("'chunks' must be >= 1".into());
                    }
                    req.chunks = v as usize;
                }
                "alpha_us" => {
                    req.link.alpha_us = field.as_f64().ok_or("'alpha_us' must be a number")?
                }
                "link_gbps" => {
                    req.link.bandwidth_gbps =
                        field.as_f64().ok_or("'link_gbps' must be a number")?
                }
                "seed" => req.seed = Some(field.as_u64().ok_or("'seed' must be an integer")?),
                "attempts" => {
                    let v = field
                        .as_u64()
                        .ok_or("'attempts' must be a positive integer")?;
                    if v == 0 {
                        return Err("'attempts' must be >= 1".into());
                    }
                    req.attempts = Some(v as usize);
                }
                "prefer_cheap_links" => {
                    req.prefer_cheap_links = Some(
                        field
                            .as_bool()
                            .ok_or("'prefer_cheap_links' must be a bool")?,
                    )
                }
                "deadline_ms" => {
                    req.deadline_ms =
                        Some(field.as_u64().ok_or("'deadline_ms' must be an integer")?)
                }
                "include_algorithm" => {
                    req.include_algorithm = field
                        .as_bool()
                        .ok_or("'include_algorithm' must be a bool")?
                }
                other => return Err(format!("unknown request field '{other}'")),
            }
        }
        if req.op == Op::Synthesize && req.topology.is_empty() {
            return Err("synthesize requests need a 'topology'".into());
        }
        Ok(req)
    }
}

/// The metrics payload of a successful synthesize response.
#[derive(Debug, Clone)]
pub struct OkBody {
    /// Whether the algorithm came from the warm cache.
    pub cache_hit: bool,
    /// Whether this request piggybacked on another request's in-flight
    /// synthesis (single-flight deduplication).
    pub deduplicated: bool,
    /// Collective completion time in picoseconds.
    pub collective_time_ps: u64,
    /// Achieved algorithmic bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Time this request spent waiting for synthesis, in milliseconds
    /// (zero on warm hits).
    pub synthesis_ms: f64,
    /// Number of chunk transfers in the schedule (zero for `ideal`).
    pub transfers: u64,
    /// NPU count of the topology the request named.
    pub num_npus: u64,
    /// The mechanism family that produced the algorithm.
    pub algorithm: String,
    /// The schedule in the compact text format, when requested.
    pub algorithm_compact: Option<String>,
}

/// Counter snapshot returned by the `stats` op.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsBody {
    /// Total requests accepted (all ops).
    pub requests: u64,
    /// Synthesize requests answered from the warm cache.
    pub cache_hits: u64,
    /// Syntheses actually executed by the worker pool.
    pub synthesized: u64,
    /// Requests that piggybacked on an in-flight synthesis.
    pub deduplicated: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests whose deadline expired while synthesis continued.
    pub deadline_expired: u64,
    /// Requests answered with an `error` status.
    pub errors: u64,
    /// Worker threads respawned after a synthesis panic killed one.
    pub worker_restarts: u64,
    /// Warm-cache checkpoints completed (periodic + `checkpoint` ops +
    /// the shutdown persist).
    pub checkpoints: u64,
    /// Entries currently in the warm cache.
    pub warm_entries: u64,
    /// Entries evicted to stay under the warm-cache caps so far
    /// (including entries trimmed while reloading a snapshot).
    pub evictions: u64,
    /// Approximate bytes of the resident warm-cache set.
    pub resident_bytes: u64,
}

/// One response line.
#[derive(Debug, Clone)]
pub enum Response {
    /// Successful synthesize result.
    Ok(Option<u64>, OkBody),
    /// Admission control refused the request (queue full or connection
    /// cap); carries a retry-after hint in milliseconds.
    Rejected(Option<u64>, u64, String),
    /// The deadline expired; synthesis continues and will warm the cache.
    Deadline(Option<u64>, String),
    /// The request was malformed or the synthesis failed.
    Error(Option<u64>, String),
    /// Counter snapshot.
    Stats(Option<u64>, StatsBody),
    /// Liveness acknowledgement.
    Pong(Option<u64>),
    /// Warm cache persisted; carries the entry count written.
    Checkpointed(Option<u64>, u64),
    /// Shutdown acknowledged.
    ShuttingDown(Option<u64>),
}

impl Response {
    /// Encodes the response as one newline-terminated JSON line.
    pub fn line(&self) -> String {
        let mut s = self.to_json().to_string();
        s.push('\n');
        s
    }

    /// The response as a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let (id, mut pairs) = match self {
            Response::Ok(id, body) => {
                let mut pairs = vec![
                    ("status", "ok".into()),
                    ("cache_hit", Json::Bool(body.cache_hit)),
                    ("deduplicated", Json::Bool(body.deduplicated)),
                    ("collective_time_ps", body.collective_time_ps.into()),
                    ("bandwidth_gbps", body.bandwidth_gbps.into()),
                    ("synthesis_ms", body.synthesis_ms.into()),
                    ("transfers", body.transfers.into()),
                    ("num_npus", body.num_npus.into()),
                    ("algorithm", body.algorithm.as_str().into()),
                ];
                if let Some(compact) = &body.algorithm_compact {
                    pairs.push(("algorithm_compact", compact.as_str().into()));
                }
                (*id, pairs)
            }
            Response::Rejected(id, retry_after_ms, reason) => (
                *id,
                vec![
                    ("status", "rejected".into()),
                    ("retry_after_ms", (*retry_after_ms).into()),
                    ("reason", reason.as_str().into()),
                ],
            ),
            Response::Deadline(id, reason) => (
                *id,
                vec![
                    ("status", "deadline".into()),
                    ("reason", reason.as_str().into()),
                ],
            ),
            Response::Error(id, reason) => (
                *id,
                vec![
                    ("status", "error".into()),
                    ("reason", reason.as_str().into()),
                ],
            ),
            Response::Stats(id, s) => (
                *id,
                vec![
                    ("status", "stats".into()),
                    ("requests", s.requests.into()),
                    ("cache_hits", s.cache_hits.into()),
                    ("synthesized", s.synthesized.into()),
                    ("deduplicated", s.deduplicated.into()),
                    ("rejected", s.rejected.into()),
                    ("deadline_expired", s.deadline_expired.into()),
                    ("errors", s.errors.into()),
                    ("worker_restarts", s.worker_restarts.into()),
                    ("checkpoints", s.checkpoints.into()),
                    ("warm_entries", s.warm_entries.into()),
                    ("evictions", s.evictions.into()),
                    ("resident_bytes", s.resident_bytes.into()),
                ],
            ),
            Response::Pong(id) => (*id, vec![("status", "pong".into())]),
            Response::Checkpointed(id, entries) => (
                *id,
                vec![
                    ("status", "checkpointed".into()),
                    ("entries", (*entries).into()),
                ],
            ),
            Response::ShuttingDown(id) => (*id, vec![("status", "shutting_down".into())]),
        };
        if let Some(id) = id {
            pairs.insert(0, ("id", id.into()));
        }
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_fills_defaults() {
        let req = Request::parse(r#"{"topology":"mesh:3x3"}"#).unwrap();
        assert_eq!(req.op, Op::Synthesize);
        assert_eq!(req.topology, "mesh:3x3");
        assert_eq!(req.collective, "all-reduce");
        assert_eq!(req.size, "64MB");
        assert_eq!(req.mechanism, "tacos");
        assert_eq!(req.chunks, 1);
        assert_eq!(req.link.alpha_us, 0.5);
        assert_eq!(req.link.bandwidth_gbps, 50.0);
        assert!(req.deadline_ms.is_none());
    }

    #[test]
    fn full_request_parses() {
        let req = Request::parse(
            r#"{"id":7,"topology":"ring:8","collective":"all-gather","size":"1.5GB",
                "mechanism":"tacos:chunks=4","chunks":2,"alpha_us":1.0,"link_gbps":25.0,
                "seed":9,"attempts":4,"prefer_cheap_links":false,"deadline_ms":500,
                "include_algorithm":true}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(7));
        assert_eq!(req.mechanism, "tacos:chunks=4");
        assert_eq!(req.seed, Some(9));
        assert_eq!(req.attempts, Some(4));
        assert_eq!(req.prefer_cheap_links, Some(false));
        assert_eq!(req.deadline_ms, Some(500));
        assert!(req.include_algorithm);
    }

    #[test]
    fn control_ops_do_not_need_a_topology() {
        for op in ["stats", "ping", "checkpoint", "shutdown"] {
            let req = Request::parse(&format!("{{\"op\":\"{op}\"}}")).unwrap();
            assert_ne!(req.op, Op::Synthesize);
        }
    }

    #[test]
    fn bad_requests_are_readable_errors() {
        for (line, needle) in [
            ("{}", "topology"),
            (r#"{"op":"fry"}"#, "unknown op"),
            (r#"{"toplogy":"mesh:3x3"}"#, "unknown request field"),
            (r#"{"topology":"mesh:3x3","chunks":0}"#, "chunks"),
            (r#"{"topology":"mesh:3x3","id":"x"}"#, "id"),
            ("[1,2]", "object"),
            ("not json", "byte"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "'{line}' gave '{err}'");
        }
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = Response::Ok(
            Some(3),
            OkBody {
                cache_hit: true,
                deduplicated: false,
                collective_time_ps: 123,
                bandwidth_gbps: 42.5,
                synthesis_ms: 0.0,
                transfers: 9,
                num_npus: 9,
                algorithm: "tacos".into(),
                algorithm_compact: None,
            },
        );
        let line = ok.line();
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        let parsed = Json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("cache_hit").unwrap().as_bool(), Some(true));

        let rej = Response::Rejected(None, 100, "queue full (depth 4)".into());
        let parsed = Json::parse(rej.line().trim()).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("rejected"));
        assert_eq!(parsed.get("retry_after_ms").unwrap().as_u64(), Some(100));
        assert!(parsed.get("id").is_none());
    }
}
