//! Overload-protection behaviors not covered by the chaos harness: the
//! per-connection idle timeout (with its slowloris-resistant clock) and
//! the request-line cap at a small, fast-to-test size.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use tacos_report::Json;
use tacos_serve::{Client, Daemon, DaemonConfig};

fn spawn(config: DaemonConfig) -> tacos_serve::DaemonHandle {
    Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        quiet: true,
        ..config
    })
    .expect("daemon starts")
}

#[test]
fn idle_connections_get_a_typed_timeout_then_close() {
    let daemon = spawn(DaemonConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(300)),
        ..DaemonConfig::default()
    });

    let stream = TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Say nothing: the daemon must eventually send a typed error naming
    // the idle timeout, then close.
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("error"),
        "got: {line}"
    );
    let reason = response
        .get("reason")
        .and_then(Json::as_str)
        .unwrap_or_default();
    assert!(reason.contains("idle"), "got: {reason}");

    line.clear();
    let n = reader.read_line(&mut line).unwrap();
    assert_eq!(n, 0, "connection must be closed after the timeout");
    daemon.stop().unwrap();
}

#[test]
fn activity_resets_the_idle_clock() {
    let daemon = spawn(DaemonConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(600)),
        ..DaemonConfig::default()
    });

    let mut client = Client::connect(daemon.addr()).unwrap();
    // Three pings spaced at half the timeout keep the connection alive
    // well past the raw timeout from connect.
    for i in 0..3 {
        std::thread::sleep(Duration::from_millis(300));
        let response = client
            .call(&format!("{{\"op\":\"ping\",\"id\":{i}}}"))
            .unwrap();
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("pong"),
            "ping {i} after ~{}ms total",
            300 * (i + 1)
        );
    }
    daemon.stop().unwrap();
}

#[test]
fn partial_lines_do_not_reset_the_idle_clock() {
    // Slowloris: a client dribbling bytes without ever finishing a line
    // must still be timed out — only *completed* requests reset the clock.
    let daemon = spawn(DaemonConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(400)),
        ..DaemonConfig::default()
    });

    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let started = std::time::Instant::now();
    let writer = std::thread::spawn(move || {
        // One byte every 100ms, never a newline; stop after 2s.
        for _ in 0..20 {
            if stream.write_all(b"x").is_err() {
                return;
            }
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let elapsed = started.elapsed();
    writer.join().unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("error"),
        "got: {line}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "dribbled bytes kept the connection alive for {elapsed:?}"
    );
    daemon.stop().unwrap();
}

#[test]
fn a_small_line_cap_rejects_with_a_typed_error() {
    let daemon = spawn(DaemonConfig {
        workers: 1,
        max_line_bytes: 128,
        ..DaemonConfig::default()
    });

    let mut client = Client::connect(daemon.addr()).unwrap();
    let oversized = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "y".repeat(200));
    let response = client.call(&oversized).unwrap();
    assert_eq!(response.get("status").and_then(Json::as_str), Some("error"));
    let reason = response
        .get("reason")
        .and_then(Json::as_str)
        .unwrap_or_default();
    assert!(reason.contains("128"), "got: {reason}");

    // A fresh connection still works: the cap is per-line, not global.
    let mut fresh = Client::connect(daemon.addr()).unwrap();
    let pong = fresh.call("{\"op\":\"ping\",\"id\":1}").unwrap();
    assert_eq!(pong.get("status").and_then(Json::as_str), Some("pong"));
    daemon.stop().unwrap();
}
