//! Domain scenario: choosing a collective algorithm for an NVLink server.
//!
//! Builds the DGX-1 hybrid cube-mesh, then pits TACOS against the
//! algorithms a CCL would pick — the naive Ring, the NCCL-style searched
//! multi-Ring, and the manually designed C-Cube dual trees — across
//! message sizes, printing a selection table like the one a CCL tuner
//! would produce.
//!
//! ```sh
//! cargo run --example heterogeneous_dgx
//! ```

use tacos::prelude::*;
use tacos_baselines::{BaselineAlgorithm, BaselineKind, IdealBound};
use tacos_collective::CollectivePattern;
use tacos_report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
    let topo = Topology::dgx1(spec)?;
    println!("topology: {topo} (every GPU has 6 NVLink ports)\n");

    let sim = Simulator::new();
    let ideal = IdealBound::new(&topo);
    let mut table = Table::new(vec!["size", "algorithm", "time", "GB/s", "vs ideal"]);

    for size in [ByteSize::kb(64), ByteSize::mb(16), ByteSize::gb(1)] {
        let collective = Collective::all_reduce(8, size)?;
        let mut rows: Vec<(String, Time)> = Vec::new();

        for kind in [
            BaselineKind::Ring,
            BaselineKind::RingEmbedded { max_rings: 3 },
            BaselineKind::CCube { pipeline: 4 },
        ] {
            let name = kind.name().to_string();
            let algo = BaselineAlgorithm::new(kind).generate(&topo, &collective)?;
            let report = sim.simulate(&topo, &algo)?;
            rows.push((name, report.collective_time()));
        }
        let result = Synthesizer::new(SynthesizerConfig::default().with_attempts(8))
            .synthesize(&topo, &collective)?;
        rows.push(("tacos".into(), result.collective_time()));

        let ideal_time = ideal.collective_time(CollectivePattern::AllReduce, size);
        for (name, time) in &rows {
            table.row(vec![
                format!("{size}"),
                name.clone(),
                format!("{time}"),
                format!("{:.2}", size.as_u64() as f64 / time.as_secs_f64() / 1e9),
                format!(
                    "{:.1}%",
                    100.0 * ideal_time.as_secs_f64() / time.as_secs_f64()
                ),
            ]);
        }
    }
    print!("{table}");
    println!("\nNote how the best manual algorithm changes with message size while");
    println!("TACOS adapts automatically — the paper's core motivation (§III).");
    Ok(())
}
