//! **Fig. 17(b)** — TACOS vs. C-Cube on the DGX-1 hybrid cube-mesh
//! (α = 0.7 µs, 1/β = 25 GB/s) for 0.5–2 GB All-Reduces, with the Ring
//! baseline and ideal bound.
//!
//! Expected shape: C-Cube disables NVLinks to keep its two trees
//! contention-free and idles others, landing near a third of ideal; TACOS
//! and the NCCL-style embedded multi-Ring use (nearly) all links (paper:
//! TACOS 93.3%, Ring 99.6% of ideal on this ring-friendly box; TACOS ≈
//! 2.86× over C-Cube).

use tacos_baselines::BaselineKind;
use tacos_bench::experiments::{run_baseline, run_ideal, run_tacos, spec, write_results_csv};
use tacos_collective::Collective;
use tacos_report::{fmt_f64, Table};
use tacos_scenario::parse_size;
use tacos_topology::Topology;

fn main() {
    let topo = Topology::dgx1(spec(0.7, 25.0)).unwrap();
    let sizes =
        ["0.5GB", "1GB", "2GB"].map(|label| (label, parse_size(label).expect("valid size")));
    println!("=== Fig. 17(b): TACOS vs C-Cube on DGX-1 ===\n");
    let mut table = Table::new(vec![
        "size",
        "C-Cube (GB/s)",
        "Ring",
        "TACOS-4",
        "Ideal",
        "C-Cube idle links",
    ]);
    let mut csv = vec![vec![
        "size".to_string(),
        "algorithm".into(),
        "bandwidth_gbps".into(),
    ]];
    for (label, size) in sizes {
        let coll = Collective::all_reduce(8, size).unwrap();
        let chunked = tacos_bench::experiments::all_reduce_chunked(8, size, 4);
        let runs = vec![
            run_baseline(&topo, &coll, BaselineKind::CCube { pipeline: 4 }),
            run_baseline(&topo, &coll, BaselineKind::RingEmbedded { max_rings: 3 }),
            run_tacos(&topo, &chunked, 8, 42),
            run_ideal(&topo, &coll),
        ];
        let idle = runs[0]
            .report
            .as_ref()
            .unwrap()
            .link_bytes()
            .iter()
            .filter(|&&b| b == 0)
            .count();
        table.row(vec![
            label.into(),
            fmt_f64(runs[0].bandwidth_gbps),
            fmt_f64(runs[1].bandwidth_gbps),
            fmt_f64(runs[2].bandwidth_gbps),
            fmt_f64(runs[3].bandwidth_gbps),
            format!("{idle}/48"),
        ]);
        for m in &runs {
            csv.push(vec![
                label.into(),
                m.name.clone(),
                format!("{}", m.bandwidth_gbps),
            ]);
        }
    }
    print!("{table}");
    write_results_csv("fig17b_ccube.csv", &csv);
}
