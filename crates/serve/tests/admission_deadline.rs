//! Admission control and per-request deadlines against a live daemon.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use tacos_report::Json;
use tacos_serve::{Client, Daemon, DaemonConfig};

fn status(r: &Json) -> Option<&str> {
    r.get("status").and_then(Json::as_str)
}

#[test]
fn a_full_admission_queue_rejects_with_a_typed_response() {
    // One worker, depth-1 queue: at most one running + one queued
    // synthesis; the rest of a concurrent burst must be rejected.
    let handle = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr().to_string();

    // Six *distinct* slow requests (different seeds → different cache
    // keys) so none deduplicate into the same flight.
    let requests: Vec<String> = (0..6)
        .map(|seed| {
            format!(
                r#"{{"topology":"mesh:3x3","collective":"all-gather","size":"4MB","attempts":2,"seed":{seed}}}"#
            )
        })
        .collect();

    let barrier = Barrier::new(requests.len());
    let responses: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                scope.spawn(|| {
                    let mut client =
                        Client::connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
                    barrier.wait();
                    client.call(request).expect("response")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = responses.iter().filter(|r| status(r) == Some("ok")).count();
    let rejected = responses
        .iter()
        .filter(|r| status(r) == Some("rejected"))
        .count();
    assert_eq!(ok + rejected, responses.len(), "{responses:?}");
    assert!(ok >= 1, "someone must be admitted: {responses:?}");
    assert!(
        rejected >= 1,
        "a depth-1 queue cannot admit a burst of 6: {responses:?}"
    );
    let reason = responses
        .iter()
        .find(|r| status(r) == Some("rejected"))
        .and_then(|r| r.get("reason"))
        .and_then(Json::as_str)
        .expect("rejected responses carry a reason");
    assert!(reason.contains("queue full"), "got reason '{reason}'");
    assert_eq!(handle.stats().rejected as usize, rejected);
    handle.stop().expect("clean stop");
}

#[test]
fn an_expired_deadline_returns_typed_and_the_synthesis_still_warms_the_cache() {
    let handle = Daemon::spawn(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        quiet: true,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr().to_string();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");

    // A deadline no real synthesis can meet.
    let response = client
        .call(r#"{"topology":"mesh:3x3","size":"4MB","attempts":4,"deadline_ms":0}"#)
        .expect("response");
    assert_eq!(status(&response), Some("deadline"), "{response:?}");
    assert!(
        response
            .get("reason")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .contains("deadline"),
        "{response:?}"
    );

    // The abandoned synthesis keeps running and lands in the warm cache:
    // the identical request (without the deadline) becomes a hit or a
    // dedup join, never a second synthesis.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if handle.stats().synthesized == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "synthesis never completed");
        std::thread::sleep(Duration::from_millis(50));
    }
    let response = client
        .call(r#"{"topology":"mesh:3x3","size":"4MB","attempts":4}"#)
        .expect("response");
    assert_eq!(status(&response), Some("ok"), "{response:?}");
    assert_eq!(
        response.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(handle.stats().synthesized, 1);
    assert_eq!(handle.stats().deadline_expired, 1);
    handle.stop().expect("clean stop");
}
