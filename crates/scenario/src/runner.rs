//! The sharded scenario runner.
//!
//! Points are distributed over a work-stealing pool of `std::thread::scope`
//! workers (the same atomic-counter pattern as `tacos-core`'s best-of-N
//! parallel synthesis): each worker repeatedly claims the next unclaimed
//! point index, executes it end-to-end, and records the result at its
//! index, so output order is deterministic regardless of scheduling.
//!
//! Every point routes through [`AlgorithmCache`] (unless disabled):
//! TACOS syntheses under their structural fingerprint, baseline
//! generations under an algorithm-tagged fingerprint. Re-running a
//! scenario — or a different scenario whose grid overlaps — therefore
//! only generates the points not already cached, which is what makes
//! large sweeps incrementally resumable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use tacos_baselines::{BaselineAlgorithm, IdealBound};
use tacos_collective::algorithm::CollectiveAlgorithm;
use tacos_collective::Collective;
use tacos_core::{AlgorithmCache, CacheOutcome, SynthesisScratch, Synthesizer, SynthesizerConfig};
use tacos_report::{to_csv, Json};
use tacos_sim::Simulator;
use tacos_topology::{Time, Topology};

use crate::error::ScenarioError;
use crate::grid::{expand, ScenarioPoint};
use crate::progress::Progress;
use crate::spec::{parse_baseline, parse_pattern, LinkAxis, ScenarioSpec};

/// Metrics measured for one successfully executed point.
#[derive(Debug, Clone)]
pub struct PointMetrics {
    /// NPU count of the instantiated topology.
    pub num_npus: usize,
    /// Collective completion time.
    pub collective_time: Time,
    /// Achieved bandwidth in GB/s (`total size / time`).
    pub bandwidth_gbps: f64,
    /// Fraction of the theoretical ideal bound achieved.
    pub efficiency: f64,
    /// Number of transfers in the algorithm.
    pub transfers: u64,
    /// Wall-clock seconds generating (or loading) the algorithm.
    pub generation_seconds: f64,
    /// Cache disposition; `None` when caching is disabled.
    pub cache: Option<CacheOutcome>,
    /// Whether the congestion-aware simulator produced the time.
    pub simulated: bool,
}

/// One grid point plus its execution outcome.
#[derive(Debug, Clone)]
pub struct PointRecord {
    /// The point.
    pub point: ScenarioPoint,
    /// Metrics, or a readable failure message.
    pub result: Result<PointMetrics, String>,
}

/// Aggregate outcome of a scenario run.
#[derive(Debug)]
pub struct RunSummary {
    /// Scenario name.
    pub scenario: String,
    /// Per-point records, in grid order.
    pub records: Vec<PointRecord>,
    /// Points whose algorithm was freshly generated this run.
    pub generated: usize,
    /// Points served from the algorithm cache.
    pub cache_hits: usize,
    /// Points that failed.
    pub failed: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl RunSummary {
    /// The CSV header used by [`RunSummary::csv_rows`].
    pub fn csv_header() -> Vec<String> {
        [
            "scenario",
            "point",
            "topology",
            "npus",
            "collective",
            "size",
            "size_bytes",
            "chunks",
            "algo",
            "seed",
            "attempts",
            "alpha_us",
            "link_gbps",
            "collective_time_ps",
            "collective_time_us",
            "bandwidth_gbps",
            "efficiency_vs_ideal",
            "transfers",
            "generation_seconds",
            "cache",
            "error",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// All records as CSV rows (header first).
    pub fn csv_rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![Self::csv_header()];
        for r in &self.records {
            let p = &r.point;
            let mut row = vec![
                self.scenario.clone(),
                p.index.to_string(),
                p.topology.clone(),
                String::new(),
                p.collective.clone(),
                p.size_label.clone(),
                p.size.as_u64().to_string(),
                p.chunks.to_string(),
                p.algo.clone(),
                p.seed.to_string(),
                p.attempts.to_string(),
            ];
            // Custom topologies carry their own per-link specs; reporting
            // the sweep's link axis for them would be fabricated data.
            if p.uses_link_axis() {
                row.push(format!("{}", p.link.alpha_us));
                row.push(format!("{}", p.link.bandwidth_gbps));
            } else {
                row.push(String::new());
                row.push(String::new());
            }
            match &r.result {
                Ok(m) => {
                    row[3] = m.num_npus.to_string();
                    row.extend([
                        m.collective_time.as_ps().to_string(),
                        format!("{}", m.collective_time.as_micros_f64()),
                        format!("{}", m.bandwidth_gbps),
                        format!("{}", m.efficiency),
                        m.transfers.to_string(),
                        format!("{}", m.generation_seconds),
                        cache_label(m.cache).to_string(),
                        String::new(),
                    ]);
                }
                Err(e) => {
                    row.extend(std::iter::repeat_with(String::new).take(7));
                    row.push(e.clone());
                }
            }
            rows.push(row);
        }
        rows
    }

    /// The full summary as a JSON value.
    pub fn to_json(&self) -> Json {
        let points = self
            .records
            .iter()
            .map(|r| {
                let p = &r.point;
                let mut fields = vec![
                    ("point", (p.index as u64).into()),
                    ("topology", Json::Str(p.topology.clone())),
                    ("collective", Json::Str(p.collective.clone())),
                    ("size", Json::Str(p.size_label.clone())),
                    ("size_bytes", (p.size.as_u64()).into()),
                    ("chunks", (p.chunks as u64).into()),
                    ("algo", Json::Str(p.algo.clone())),
                    ("seed", (p.seed).into()),
                    ("attempts", (p.attempts as u64).into()),
                ];
                if p.uses_link_axis() {
                    fields.push(("alpha_us", p.link.alpha_us.into()));
                    fields.push(("link_gbps", p.link.bandwidth_gbps.into()));
                }
                match &r.result {
                    Ok(m) => fields.extend([
                        ("npus", (m.num_npus as u64).into()),
                        ("collective_time_ps", (m.collective_time.as_ps()).into()),
                        ("bandwidth_gbps", m.bandwidth_gbps.into()),
                        ("efficiency_vs_ideal", m.efficiency.into()),
                        ("transfers", (m.transfers).into()),
                        ("generation_seconds", m.generation_seconds.into()),
                        ("cache", Json::Str(cache_label(m.cache).into())),
                    ]),
                    Err(e) => fields.push(("error", Json::Str(e.clone()))),
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("points", Json::Arr(points)),
            ("generated", (self.generated as u64).into()),
            ("cache_hits", (self.cache_hits as u64).into()),
            ("failed", (self.failed as u64).into()),
            ("elapsed_seconds", self.elapsed.as_secs_f64().into()),
        ])
    }

    /// Writes `<stem>.csv` and `<stem>.json`, creating parent directories.
    ///
    /// # Errors
    /// Propagates filesystem errors with the offending path.
    pub fn write_outputs(&self, stem: &str) -> Result<(), ScenarioError> {
        if let Some(parent) = std::path::Path::new(stem).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ScenarioError::io(parent.display().to_string(), e))?;
            }
        }
        let csv_path = format!("{stem}.csv");
        std::fs::write(&csv_path, to_csv(&self.csv_rows()))
            .map_err(|e| ScenarioError::io(csv_path.clone(), e))?;
        let json_path = format!("{stem}.json");
        std::fs::write(&json_path, self.to_json().to_string())
            .map_err(|e| ScenarioError::io(json_path.clone(), e))?;
        Ok(())
    }
}

fn cache_label(outcome: Option<CacheOutcome>) -> &'static str {
    match outcome {
        Some(CacheOutcome::Hit) => "hit",
        Some(CacheOutcome::Miss) => "miss",
        None => "off",
    }
}

/// Expands and executes a scenario, sharding points across worker threads.
///
/// Point-level failures are recorded per point (and counted in
/// [`RunSummary::failed`]) rather than aborting the sweep; only setup
/// failures — an unopenable cache directory, an invalid spec — abort.
///
/// # Errors
/// Returns setup errors; never point-level execution errors.
pub fn run(spec: &ScenarioSpec) -> Result<RunSummary, ScenarioError> {
    let points = expand(spec)?;
    let cache = match &spec.run.cache {
        Some(dir) => Some(AlgorithmCache::new(dir).map_err(|e| ScenarioError::io(dir.clone(), e))?),
        None => None,
    };
    let workers = if spec.run.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        spec.run.threads
    }
    .min(points.len())
    .max(1);

    let progress = Progress::new(points.len(), !spec.run.quiet);
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<Option<PointRecord>>> = Mutex::new(vec![None; points.len()]);
    let started = Instant::now();

    // Every point sharing a (topology, link) axis combination reuses one
    // parsed/built Topology instead of reconstructing it per point. Built
    // lazily so a combination that only appears in failing points still
    // reports its build error per point.
    let topo_shares = TopologyShares::new(&points);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Per-worker synthesis scratch, reused across every point
                // this worker claims.
                let mut scratch = SynthesisScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let point = &points[i];
                    let result = match topo_shares.get(spec, point) {
                        Ok(topo) => execute_point(spec, point, topo, cache.as_ref(), &mut scratch),
                        Err(e) => Err(e),
                    };
                    let note = match &result {
                        Ok(m) => format!(
                            "{} ({})",
                            m.collective_time,
                            match m.cache {
                                Some(CacheOutcome::Hit) => "cache hit",
                                _ => "generated",
                            }
                        ),
                        Err(e) => format!("FAILED: {e}"),
                    };
                    progress.complete(&point.label(), &note);
                    let record = PointRecord {
                        point: point.clone(),
                        result,
                    };
                    records.lock().expect("no poisoned locks")[i] = Some(record);
                }
            });
        }
    });

    let records: Vec<PointRecord> = records
        .into_inner()
        .expect("no poisoned locks")
        .into_iter()
        .map(|r| r.expect("every point executed"))
        .collect();
    let mut generated = 0;
    let mut cache_hits = 0;
    let mut failed = 0;
    for r in &records {
        match &r.result {
            Ok(m) if m.cache == Some(CacheOutcome::Hit) => cache_hits += 1,
            Ok(_) => generated += 1,
            Err(_) => failed += 1,
        }
    }
    let summary = RunSummary {
        scenario: spec.name.clone(),
        records,
        generated,
        cache_hits,
        failed,
        elapsed: started.elapsed(),
    };
    if let Some(stem) = &spec.output {
        summary.write_outputs(stem)?;
    }
    Ok(summary)
}

/// Lazily built topologies shared by every grid point with the same
/// (topology spec, link axis) combination.
struct TopologyShares {
    combos: Vec<(String, LinkAxis)>,
    built: Vec<OnceLock<Result<Topology, String>>>,
}

impl TopologyShares {
    fn new(points: &[ScenarioPoint]) -> Self {
        let mut combos: Vec<(String, LinkAxis)> = Vec::new();
        for p in points {
            if !combos.iter().any(|(t, l)| *t == p.topology && *l == p.link) {
                combos.push((p.topology.clone(), p.link));
            }
        }
        let built = combos.iter().map(|_| OnceLock::new()).collect();
        TopologyShares { combos, built }
    }

    /// The shared topology for `point`, building it on first use.
    fn get<'a>(
        &'a self,
        spec: &ScenarioSpec,
        point: &ScenarioPoint,
    ) -> Result<&'a Topology, String> {
        let idx = self
            .combos
            .iter()
            .position(|(t, l)| *t == point.topology && *l == point.link)
            .expect("every point's combo was registered");
        self.built[idx]
            .get_or_init(|| spec.build_topology(&point.topology, point.link.to_spec()))
            .as_ref()
            .map_err(Clone::clone)
    }
}

/// Executes one grid point end-to-end: topology → collective → algorithm
/// (through the cache) → time/bandwidth/efficiency metrics.
fn execute_point(
    spec: &ScenarioSpec,
    point: &ScenarioPoint,
    topo: &Topology,
    cache: Option<&AlgorithmCache>,
    scratch: &mut SynthesisScratch,
) -> Result<PointMetrics, String> {
    let pattern = parse_pattern(&point.collective, topo.num_npus())?;
    let collective = Collective::with_chunking(pattern, topo.num_npus(), point.chunks, point.size)
        .map_err(|e| e.to_string())?;
    let config = SynthesizerConfig::default()
        .with_seed(point.seed)
        .with_attempts(point.attempts);
    let synth = Synthesizer::new(config);

    let started = Instant::now();
    let (algorithm, outcome): (CollectiveAlgorithm, Option<CacheOutcome>) = if point.algo == "tacos"
    {
        match cache {
            Some(c) => {
                let (algo, outcome) = c
                    .synthesize_cached_traced_with(&synth, topo, &collective, scratch)
                    .map_err(|e| e.to_string())?;
                (algo, Some(outcome))
            }
            None => (
                synth
                    .synthesize_with(topo, &collective, scratch)
                    .map_err(|e| e.to_string())?
                    .into_algorithm(),
                None,
            ),
        }
    } else {
        let kind = parse_baseline(&point.algo, point.seed)?;
        let generate = || {
            BaselineAlgorithm::new(kind.clone())
                .generate(topo, &collective)
                .map_err(|e| e.to_string())
        };
        match cache {
            Some(c) => {
                // Deterministic baselines ignore the synthesizer's
                // seed/attempts, so their key must too — otherwise a
                // seed sweep regenerates identical algorithms. Randomized
                // baselines report the seed they consume via
                // `BaselineKind::seed`.
                let salt = kind.seed().unwrap_or(0);
                let key = AlgorithmCache::key_for_generator(&point.algo, topo, &collective, salt);
                let (algo, outcome) = c.load_or_insert_with(&key, generate)?;
                (algo, Some(outcome))
            }
            None => (generate()?, None),
        }
    };
    let generation_seconds = started.elapsed().as_secs_f64();

    let (collective_time, simulated) = if spec.run.simulate || algorithm.planned_time().is_none() {
        let report = Simulator::new()
            .simulate(topo, &algorithm)
            .map_err(|e| e.to_string())?;
        (report.collective_time(), true)
    } else {
        (algorithm.collective_time(), false)
    };

    let bandwidth_gbps = if collective_time.is_zero() {
        f64::INFINITY
    } else {
        point.size.as_u64() as f64 / collective_time.as_secs_f64() / 1e9
    };
    let efficiency = IdealBound::new(topo).efficiency(pattern, point.size, collective_time);

    Ok(PointMetrics {
        num_npus: topo.num_npus(),
        collective_time,
        bandwidth_gbps,
        efficiency,
        transfers: algorithm.len() as u64,
        generation_seconds,
        cache: outcome,
        simulated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn toml_spec(body: &str) -> ScenarioSpec {
        ScenarioSpec::from_toml_str(body).unwrap()
    }

    #[test]
    fn runs_a_small_grid_without_cache() {
        let spec = toml_spec(
            r#"
[scenario]
name = "small"
[sweep]
topology = ["mesh:2x2"]
collective = ["all-gather"]
size = ["4MB"]
algo = ["tacos", "ring"]
[run]
cache = false
simulate = true
threads = 2
"#,
        );
        let mut spec = spec;
        spec.run.quiet = true;
        let summary = run(&spec).unwrap();
        assert_eq!(summary.records.len(), 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.generated, 2);
        assert_eq!(summary.cache_hits, 0);
        for r in &summary.records {
            let m = r.result.as_ref().unwrap();
            assert!(m.collective_time > Time::ZERO);
            assert!(m.bandwidth_gbps > 0.0);
            assert!(m.cache.is_none());
            assert!(m.simulated);
        }
    }

    #[test]
    fn point_failures_are_recorded_not_fatal() {
        // dbt requires an even number of NPUs > 2 on many topologies; a
        // 3-NPU ring makes it fail while ring succeeds.
        let mut spec = toml_spec(
            r#"
[scenario]
name = "mixed"
[sweep]
topology = ["ring:3"]
collective = ["all-reduce"]
size = ["3MB"]
algo = ["ring", "dbt"]
[run]
cache = false
"#,
        );
        spec.run.quiet = true;
        let summary = run(&spec).unwrap();
        assert_eq!(summary.records.len(), 2);
        let ok = summary.records.iter().filter(|r| r.result.is_ok()).count();
        // At least the ring baseline must succeed; if dbt also succeeds
        // the failure-accounting still holds trivially.
        assert!(ok >= 1);
        assert_eq!(summary.failed, 2 - ok);
    }

    #[test]
    fn csv_and_json_have_a_row_per_point() {
        let mut spec = toml_spec(
            r#"
[scenario]
name = "io"
[sweep]
topology = ["ring:4"]
size = ["1MB", "2MB"]
algo = ["ring"]
[run]
cache = false
"#,
        );
        spec.run.quiet = true;
        let summary = run(&spec).unwrap();
        let rows = summary.csv_rows();
        assert_eq!(rows.len(), 1 + 2);
        assert_eq!(rows[0].len(), rows[1].len());
        let json = summary.to_json().to_string();
        assert!(json.contains("\"scenario\":\"io\""));
        assert!(json.contains("\"points\":["));
    }
}
