//! The Network Utilization Maximizing Matching algorithm (paper Alg. 1,
//! Fig. 8).
//!
//! Per time span, the paper iterates unsatisfied postconditions `(d, c)` in
//! random order, backtracks `d`'s incoming TEN links, and randomly picks a
//! source that already holds `c` (preferring lower-cost links on
//! heterogeneous networks, §IV-F). This module implements the
//! **link-centric equivalent**: iterate the free links in random
//! (cost-prioritized) order and pick a random chunk from
//! `holds(src) ∩ needs(dst)`. Both produce maximal matchings — within one
//! time span `holds` never grows and each processed link either matches or
//! can never match this span — but the link-centric form runs each probe as
//! a word-wise bitset AND, which is what keeps end-to-end synthesis on the
//! O(n²) trend of paper Fig. 19.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use tacos_collective::algorithm::{AlgorithmBuilder, TransferId, TransferKind};
use tacos_collective::ChunkSet;
use tacos_ten::{Arrival, ExpandingTen};
use tacos_topology::{LinkId, NpuId, Topology};

/// Sentinel for "chunk was initially held; no providing transfer".
const NO_PROVIDER: u32 = u32::MAX;

/// Relay routing support for collectives with **sparse postconditions**
/// (All-to-All, Gather, Scatter) — an extension beyond the paper, whose
/// matching only moves chunks toward NPUs that want them and therefore
/// cannot route through disinterested intermediates. Relay matching lets a
/// link carry a chunk to an intermediate whenever doing so strictly
/// decreases the hop distance to the chunk's (unique) final destination,
/// which guarantees progress and termination.
pub(crate) struct RelayInfo {
    /// `target[chunk]` = the final destination NPU.
    target: Vec<u32>,
    /// `dist[v][t]` = directed hop distance from `v` to `t` (`u16::MAX` if
    /// unreachable), computed by reverse BFS from each distinct target.
    dist: Vec<Vec<u16>>,
}

impl RelayInfo {
    /// Builds relay metadata from per-chunk destinations.
    pub(crate) fn new(topo: &Topology, target: Vec<u32>) -> Self {
        let n = topo.num_npus();
        // dist[v][t]: reverse BFS from every distinct target.
        let mut dist = vec![vec![u16::MAX; n]; n];
        let distinct: std::collections::BTreeSet<u32> = target.iter().copied().collect();
        for &t in &distinct {
            let row: Vec<u16> = {
                let mut d = vec![u16::MAX; n];
                d[t as usize] = 0;
                let mut queue = std::collections::VecDeque::from([t as usize]);
                while let Some(v) = queue.pop_front() {
                    for &lid in topo.in_links(NpuId::new(v as u32)) {
                        let u = topo.link(lid).src().index();
                        if d[u] == u16::MAX {
                            d[u] = d[v] + 1;
                            queue.push_back(u);
                        }
                    }
                }
                d
            };
            for v in 0..n {
                dist[v][t as usize] = row[v];
            }
        }
        RelayInfo { target, dist }
    }

    fn moves_closer(&self, chunk: usize, src: NpuId, dst: NpuId) -> bool {
        let t = self.target[chunk] as usize;
        self.dist[dst.index()][t] < self.dist[src.index()][t]
    }
}

/// Mutable matching state: who holds what, who still needs what, and which
/// transfer delivered each held chunk (for dependency edges).
pub(crate) struct MatchState {
    num_chunks: usize,
    /// Chunks that have physically arrived at each NPU.
    holds: Vec<ChunkSet>,
    /// Postcondition chunks not yet arrived *or in flight* toward each NPU.
    needs: Vec<ChunkSet>,
    /// `provider[npu * num_chunks + chunk]` = transfer that delivered the
    /// chunk (dependency for onward forwards). Empty when dependency
    /// tracking is disabled.
    provider: Vec<u32>,
    unsatisfied: usize,
    /// Scratch: shuffled link order, reused across rounds.
    link_order: Vec<LinkId>,
    /// Relay routing for sparse-postcondition patterns, with per-NPU
    /// "seen" sets (arrived or in-flight) for duplicate suppression.
    relay: Option<(RelayInfo, Vec<ChunkSet>)>,
}

impl MatchState {
    /// Builds the state from per-NPU pre/postconditions.
    pub(crate) fn new(
        preconditions: Vec<ChunkSet>,
        postconditions: Vec<ChunkSet>,
        num_links: usize,
        track_deps: bool,
    ) -> Self {
        assert_eq!(preconditions.len(), postconditions.len());
        let num_chunks = preconditions.first().map_or(0, ChunkSet::capacity);
        let num_npus = preconditions.len();
        let mut needs = postconditions;
        let mut unsatisfied = 0;
        for (need, pre) in needs.iter_mut().zip(&preconditions) {
            need.subtract(pre);
            unsatisfied += need.len();
        }
        MatchState {
            num_chunks,
            holds: preconditions,
            needs,
            provider: if track_deps {
                vec![NO_PROVIDER; num_npus * num_chunks]
            } else {
                Vec::new()
            },
            unsatisfied,
            link_order: (0..num_links as u32).map(LinkId::new).collect(),
            relay: None,
        }
    }

    /// Enables relay routing (sparse-postcondition patterns): initializes
    /// per-NPU "seen" sets to the current holdings.
    pub(crate) fn enable_relay(&mut self, relay: RelayInfo) {
        let seen = self.holds.clone();
        self.relay = Some((relay, seen));
    }

    /// Number of unsatisfied `(NPU, chunk)` postconditions (in-flight
    /// chunks already count as satisfied, as in paper Alg. 1 which marks
    /// the precondition at match time).
    pub(crate) fn unsatisfied(&self) -> usize {
        self.unsatisfied
    }

    /// The chunks that have arrived at `npu` so far.
    #[cfg(test)]
    pub(crate) fn held(&self, npu: NpuId) -> &ChunkSet {
        &self.holds[npu.index()]
    }

    fn provider_of(&self, npu: NpuId, chunk: usize) -> Option<TransferId> {
        if self.provider.is_empty() {
            return None;
        }
        let raw = self.provider[npu.index() * self.num_chunks + chunk];
        (raw != NO_PROVIDER).then(|| TransferId::new(raw))
    }

    fn set_provider(&mut self, npu: NpuId, chunk: usize, transfer: TransferId) {
        if !self.provider.is_empty() {
            self.provider[npu.index() * self.num_chunks + chunk] = transfer.index() as u32;
        }
    }

    /// Registers a chunk arrival: the destination now *holds* the chunk and
    /// may forward it in subsequent time spans.
    pub(crate) fn apply_arrival(&mut self, arrival: &Arrival) {
        self.holds[arrival.dst.index()].insert(arrival.chunk);
    }

    /// Runs one utilization-maximizing matching round at the TEN's current
    /// time (paper Alg. 1). Returns the number of link–chunk matches made.
    ///
    /// When `builder` is `Some`, each match is recorded as a scheduled
    /// transfer whose dependency is the transfer that delivered the chunk
    /// to the source (empty for precondition chunks).
    pub(crate) fn run_round(
        &mut self,
        topo: &Topology,
        ten: &mut ExpandingTen,
        rng: &mut StdRng,
        prefer_cheap_links: bool,
        mut builder: Option<&mut AlgorithmBuilder>,
        transfers_out: &mut u64,
    ) -> usize {
        // Random order maximizes fairness across links (the paper's random
        // postcondition selection); an optional stable sort by cost then
        // prioritizes cheaper links while keeping ties random (§IV-F).
        self.link_order.shuffle(rng);
        if prefer_cheap_links {
            self.link_order.sort_by_key(|&l| ten.link_cost(l));
        }
        let mut matches = 0;
        for i in 0..self.link_order.len() {
            let link = self.link_order[i];
            if !ten.is_free(link) {
                continue;
            }
            let l = topo.link(link);
            let (src, dst) = (l.src(), l.dst());
            // Direct match first: a chunk the destination itself needs.
            let mut chunk = self.holds[src.index()]
                .pick_intersection(&self.needs[dst.index()], rng.gen::<usize>());
            if chunk.is_none() {
                // Relay match: a chunk that strictly approaches its final
                // destination through this link (extension, see RelayInfo).
                if let Some((relay, seen)) = &self.relay {
                    chunk = self.holds[src.index()].pick_excluding_where(
                        &seen[dst.index()],
                        rng.gen::<usize>(),
                        |c| relay.moves_closer(c.index(), src, dst),
                    );
                }
            }
            let Some(chunk) = chunk else {
                continue;
            };
            // Link–chunk match: mark the postcondition satisfied and put
            // the chunk in flight (paper Fig. 8c).
            if self.needs[dst.index()].remove(chunk) {
                self.unsatisfied -= 1;
            }
            if let Some((_, seen)) = &mut self.relay {
                seen[dst.index()].insert(chunk);
            }
            let start = ten.now();
            let arrive = ten.occupy(link, chunk);
            *transfers_out += 1;
            if let Some(b) = builder.as_deref_mut() {
                let deps: Vec<TransferId> =
                    self.provider_of(src, chunk.index()).into_iter().collect();
                let id = b.push_scheduled(
                    chunk,
                    src,
                    dst,
                    TransferKind::Copy,
                    link,
                    start,
                    arrive - start,
                    deps,
                );
                self.set_provider(dst, chunk.index(), id);
            }
            matches += 1;
        }
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tacos_collective::{ChunkId, Collective};
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, RingOrientation, Time};

    fn ring4() -> Topology {
        let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
        Topology::ring(4, spec, RingOrientation::Unidirectional).unwrap()
    }

    fn all_gather_state(topo: &Topology, track_deps: bool) -> MatchState {
        let coll = Collective::all_gather(topo.num_npus(), ByteSize::mb(4)).unwrap();
        let pre = topo.npus().map(|n| coll.precondition(n)).collect();
        let post = topo.npus().map(|n| coll.postcondition(n)).collect();
        MatchState::new(pre, post, topo.num_links(), track_deps)
    }

    #[test]
    fn initial_unsatisfied_count() {
        let topo = ring4();
        let state = all_gather_state(&topo, true);
        // Each of 4 NPUs needs the 3 chunks it does not own.
        assert_eq!(state.unsatisfied(), 12);
    }

    #[test]
    fn first_round_saturates_the_ring() {
        let topo = ring4();
        let mut state = all_gather_state(&topo, true);
        let mut ten = ExpandingTen::new(&topo, ByteSize::mb(1));
        let mut rng = StdRng::seed_from_u64(1);
        let mut count = 0u64;
        let matches = state.run_round(&topo, &mut ten, &mut rng, true, None, &mut count);
        // Every NPU has exactly one outgoing link whose destination needs
        // its chunk: all 4 links match.
        assert_eq!(matches, 4);
        assert_eq!(count, 4);
        assert_eq!(state.unsatisfied(), 8);
        // Second round at the same time: all links busy, nothing matches.
        let matches = state.run_round(&topo, &mut ten, &mut rng, true, None, &mut count);
        assert_eq!(matches, 0);
    }

    #[test]
    fn arrivals_enable_forwarding() {
        let topo = ring4();
        let mut state = all_gather_state(&topo, true);
        let mut ten = ExpandingTen::new(&topo, ByteSize::mb(1));
        let mut rng = StdRng::seed_from_u64(1);
        let mut count = 0u64;
        state.run_round(&topo, &mut ten, &mut rng, true, None, &mut count);
        for arrival in ten.advance() {
            state.apply_arrival(&arrival);
        }
        // NPU1 now holds chunk 0 and can forward it to NPU2.
        assert!(state.held(NpuId::new(1)).contains(ChunkId::new(0)));
        let matches = state.run_round(&topo, &mut ten, &mut rng, true, None, &mut count);
        assert_eq!(matches, 4);
    }

    #[test]
    fn provider_tracking_builds_dependencies() {
        let topo = ring4();
        let coll = Collective::all_gather(4, ByteSize::mb(4)).unwrap();
        let mut state = all_gather_state(&topo, true);
        let mut ten = ExpandingTen::new(&topo, ByteSize::mb(1));
        let mut rng = StdRng::seed_from_u64(1);
        let mut builder = AlgorithmBuilder::new("t", 4, coll.chunk_size(), coll.total_size());
        let mut count = 0u64;
        loop {
            state.run_round(
                &topo,
                &mut ten,
                &mut rng,
                true,
                Some(&mut builder),
                &mut count,
            );
            if state.unsatisfied() == 0 && ten.pending() == 0 {
                break;
            }
            let events = ten.advance();
            assert!(!events.is_empty(), "stuck");
            for a in &events {
                state.apply_arrival(a);
            }
        }
        let algo = builder.build();
        // 4 NPUs x 3 missing chunks = 12 transfers.
        assert_eq!(algo.len(), 12);
        // Forwarded chunks depend on the transfer that delivered them.
        let with_deps = algo
            .transfers()
            .iter()
            .filter(|t| !t.deps().is_empty())
            .count();
        assert_eq!(with_deps, 8); // rounds 2 and 3 forward delivered chunks
        assert!(algo.validate_causal().is_ok());
        assert!(algo.validate_contention_free().is_ok());
    }

    #[test]
    fn dependency_tracking_can_be_disabled() {
        let topo = ring4();
        let mut state = all_gather_state(&topo, false);
        assert!(state.provider.is_empty());
        let mut ten = ExpandingTen::new(&topo, ByteSize::mb(1));
        let mut rng = StdRng::seed_from_u64(1);
        let mut count = 0u64;
        let matches = state.run_round(&topo, &mut ten, &mut rng, true, None, &mut count);
        assert_eq!(matches, 4);
    }
}
