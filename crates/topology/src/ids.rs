//! Identifier newtypes for NPUs and links.

use std::fmt;

/// Identifies one Neural Processing Unit (endpoint) in a [`Topology`].
///
/// NPU ids are dense: a topology with `n` NPUs uses ids `0..n`, so they can
/// index `Vec`s directly via [`NpuId::index`].
///
/// [`Topology`]: crate::Topology
///
/// ```
/// use tacos_topology::NpuId;
/// let npu = NpuId::new(3);
/// assert_eq!(npu.index(), 3);
/// assert_eq!(format!("{npu}"), "NPU3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NpuId(u32);

impl NpuId {
    /// Creates an NPU id from its dense index.
    pub const fn new(index: u32) -> Self {
        NpuId(index)
    }

    /// The dense index, suitable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NpuId {
    fn from(v: u32) -> Self {
        NpuId(v)
    }
}

impl From<NpuId> for usize {
    fn from(v: NpuId) -> usize {
        v.index()
    }
}

impl fmt::Display for NpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NPU{}", self.0)
    }
}

/// Identifies one unidirectional physical link in a [`Topology`].
///
/// Topologies are directed multigraphs: a bidirectional connection is two
/// links, and parallel links between the same NPU pair (as on DGX-1's doubled
/// NVLinks) are distinct `LinkId`s.
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from its dense index.
    pub const fn new(index: u32) -> Self {
        LinkId(index)
    }

    /// The dense index, suitable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

impl From<LinkId> for usize {
    fn from(v: LinkId) -> usize {
        v.index()
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npu_id_roundtrip() {
        let id = NpuId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NpuId::from(42u32), id);
    }

    #[test]
    fn link_id_roundtrip() {
        let id = LinkId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(LinkId::from(7u32), id);
        assert_eq!(format!("{id}"), "L7");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NpuId::new(1) < NpuId::new(2));
        assert!(LinkId::new(0) < LinkId::new(1));
    }
}
