//! The unified communication-mechanism vocabulary.
//!
//! Every evaluation layer in the repo — the scenario engine's `algo`
//! axis, the CLI's `--algo` flag, and [`crate::TrainingEvaluator`] —
//! answers the same question: *how is a collective executed?* A
//! [`Mechanism`] is that answer as one serializable value: a baseline
//! generator (with its paper `name:N` parameters), a TACOS synthesis
//! (with its full [`SynthesizerConfig`] plus an optional chunking-factor
//! override), or the theoretical ideal bound.
//!
//! The canonical serialization is the algorithm spec string used in
//! scenario files ([`Mechanism::parse`]): `ring`, `themis:64`,
//! `multitree`, `ideal`, `tacos`, `tacos:4`, and the per-variant
//! `synth.*` override form `tacos:attempts=8,prefer_cheap_links=false`.

use tacos_baselines::{BaselineKind, TacclConfig};
use tacos_core::SynthesizerConfig;

/// A TACOS synthesis as a mechanism: the full synthesizer configuration
/// plus an optional chunking-factor override for the collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthMechanism {
    /// The synthesizer configuration (seed, attempts, prefer-cheap-links).
    pub config: SynthesizerConfig,
    /// Chunking-factor override for this variant only (`tacos:N` /
    /// `tacos:chunks=N`); `None` uses the caller's chunking axis.
    pub chunks: Option<usize>,
}

/// How a collective is executed: the evaluation layer's shared
/// vocabulary (scenario `algo` axis, CLI `--algo`, training evaluation).
#[derive(Debug, Clone, PartialEq)]
pub enum Mechanism {
    /// One of the baseline algorithm generators.
    Baseline(BaselineKind),
    /// A TACOS synthesis under a concrete [`SynthesizerConfig`].
    Tacos(SynthMechanism),
    /// The theoretical ideal bound: no algorithm is generated or
    /// simulated; times come from [`tacos_baselines::IdealBound`].
    Ideal,
}

impl Mechanism {
    /// Display name for tables and reports (the algorithm family, without
    /// parameters).
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Baseline(kind) => kind.name(),
            Mechanism::Tacos(_) => "tacos",
            Mechanism::Ideal => "ideal",
        }
    }

    /// Parses an algorithm spec string into a mechanism.
    ///
    /// `base` supplies the synthesizer configuration that `tacos`
    /// variants start from (the scenario engine builds it from the
    /// point's `seed` / `attempts` / `synth.prefer_cheap_links` axis
    /// values) and the seed consumed by randomized baselines. Accepted
    /// forms:
    ///
    /// * `ideal` — the theoretical bound;
    /// * `tacos` — synthesis under `base` unchanged;
    /// * `tacos:N` — synthesis with the chunking factor overridden to
    ///   `N` (the paper's "TACOS-N" chunked variants);
    /// * `tacos:key=value,...` — per-variant `synth.*` overrides on top
    ///   of `base`: `chunks`, `attempts`, `seed`, `prefer_cheap_links`,
    ///   `reference_matching` (e.g. `tacos:attempts=64`,
    ///   `tacos:chunks=4,seed=7`, `tacos:reference_matching=true` for the
    ///   oracle-parity smoke);
    /// * any [`parse_baseline`] spec (`ring`, `themis:64`, `multitree`,
    ///   `taccl:5000`, ...).
    ///
    /// # Errors
    /// Returns a message for unknown algorithms, malformed parameters,
    /// or unknown `synth.*` override keys.
    pub fn parse(spec: &str, base: &SynthesizerConfig) -> Result<Mechanism, String> {
        match spec {
            "ideal" => return Ok(Mechanism::Ideal),
            "tacos" => {
                return Ok(Mechanism::Tacos(SynthMechanism {
                    config: base.clone(),
                    chunks: None,
                }))
            }
            _ => {}
        }
        if let Some(param) = spec.strip_prefix("tacos:") {
            return parse_tacos_variant(param, base).map(Mechanism::Tacos);
        }
        parse_baseline(spec, base.seed()).map(Mechanism::Baseline)
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses the parameter part of a `tacos:...` variant: either a bare
/// chunking factor or comma-separated `key=value` overrides.
fn parse_tacos_variant(param: &str, base: &SynthesizerConfig) -> Result<SynthMechanism, String> {
    let mut mechanism = SynthMechanism {
        config: base.clone(),
        chunks: None,
    };
    if !param.contains('=') {
        // Legacy `tacos:N`: a bare chunking-factor override.
        let chunks: usize = param
            .parse()
            .map_err(|e| format!("bad chunking factor '{param}': {e}"))?;
        if chunks == 0 {
            return Err("chunking factor must be >= 1".into());
        }
        mechanism.chunks = Some(chunks);
        return Ok(mechanism);
    }
    for pair in param.split(',') {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("tacos override '{pair}' is not key=value"))?;
        let (key, value) = (key.trim(), value.trim());
        let positive = |what: &str| -> Result<usize, String> {
            let v: usize = value
                .parse()
                .map_err(|e| format!("bad {what} '{value}': {e}"))?;
            if v == 0 {
                return Err(format!("{what} must be >= 1"));
            }
            Ok(v)
        };
        match key {
            "chunks" => mechanism.chunks = Some(positive("chunking factor")?),
            "attempts" => {
                mechanism.config = mechanism
                    .config
                    .clone()
                    .with_attempts(positive("attempts")?);
            }
            "seed" => {
                let seed: u64 = value
                    .parse()
                    .map_err(|e| format!("bad seed '{value}': {e}"))?;
                mechanism.config = mechanism.config.clone().with_seed(seed);
            }
            "prefer_cheap_links" => {
                let on = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad prefer_cheap_links '{other}' (true|false)")),
                };
                mechanism.config = mechanism.config.clone().with_prefer_cheap_links(on);
            }
            "reference_matching" => {
                // The scan-everything oracle round (schedule-identical to
                // the event-driven matcher by construction; CI diffs the
                // two). Slow — for parity smokes, not production sweeps.
                let on = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad reference_matching '{other}' (true|false)")),
                };
                mechanism.config = mechanism.config.clone().with_reference_matching(on);
            }
            other => {
                return Err(format!(
                    "unknown tacos override '{other}' (expected one of: chunks, \
                     attempts, seed, prefer_cheap_links, reference_matching)"
                ))
            }
        }
    }
    Ok(mechanism)
}

/// Parses a baseline algorithm name into its [`BaselineKind`].
///
/// Parameterized baselines accept the paper's `name-N` variants as a
/// `name:N` suffix: `themis:64` / `blueconnect:8` (chunk groups, default
/// 4), `dbt:2` / `ccube:2` (pipeline depth, default 4), `ring-embedded:2`
/// (parallel rings, default 3), and `taccl:50000` (search-node budget,
/// default [`TacclConfig::default`]'s). `seed` is consumed by randomized
/// baselines (the TACCL-like search) and ignored by deterministic ones.
///
/// # Errors
/// Returns a message for unknown algorithm names, a parameter on a
/// parameterless baseline, or a malformed/zero parameter.
pub fn parse_baseline(s: &str, seed: u64) -> Result<BaselineKind, String> {
    let (name, param) = match s.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (s, None),
    };
    let num = |what: &str, default: usize| -> Result<usize, String> {
        match param {
            None => Ok(default),
            Some(p) => {
                let v: usize = p.parse().map_err(|e| format!("bad {what} '{p}': {e}"))?;
                if v == 0 {
                    return Err(format!("{what} must be >= 1"));
                }
                Ok(v)
            }
        }
    };
    let fixed = |kind: BaselineKind| -> Result<BaselineKind, String> {
        match param {
            None => Ok(kind),
            Some(p) => Err(format!("algorithm '{name}' takes no ':{p}' parameter")),
        }
    };
    match name {
        "ring" => fixed(BaselineKind::Ring),
        "ring-uni" => fixed(BaselineKind::RingUnidirectional),
        "ring-embedded" => Ok(BaselineKind::RingEmbedded {
            max_rings: num("max rings", 3)?,
        }),
        "direct" => fixed(BaselineKind::Direct),
        "rhd" => fixed(BaselineKind::Rhd),
        "dbt" => Ok(BaselineKind::Dbt {
            pipeline: num("pipeline depth", 4)?,
        }),
        "blueconnect" => Ok(BaselineKind::BlueConnect {
            chunks: num("chunk groups", 4)?,
        }),
        "themis" => Ok(BaselineKind::Themis {
            chunks: num("chunk groups", 4)?,
        }),
        "multitree" => fixed(BaselineKind::MultiTree),
        "ccube" => Ok(BaselineKind::CCube {
            pipeline: num("pipeline depth", 4)?,
        }),
        "taccl" => {
            let defaults = TacclConfig::default();
            Ok(BaselineKind::TacclLike(TacclConfig {
                seed,
                node_budget: num("node budget", defaults.node_budget as usize)? as u64,
                ..defaults
            }))
        }
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SynthesizerConfig {
        SynthesizerConfig::default().with_seed(42).with_attempts(8)
    }

    #[test]
    fn parses_the_three_mechanism_families() {
        assert_eq!(
            Mechanism::parse("ideal", &base()).unwrap(),
            Mechanism::Ideal
        );
        assert!(matches!(
            Mechanism::parse("multitree", &base()).unwrap(),
            Mechanism::Baseline(BaselineKind::MultiTree)
        ));
        let tacos = Mechanism::parse("tacos", &base()).unwrap();
        assert_eq!(
            tacos,
            Mechanism::Tacos(SynthMechanism {
                config: base(),
                chunks: None,
            })
        );
        assert_eq!(tacos.name(), "tacos");
    }

    #[test]
    fn bare_number_and_chunks_override_agree() {
        let short = Mechanism::parse("tacos:4", &base()).unwrap();
        let long = Mechanism::parse("tacos:chunks=4", &base()).unwrap();
        assert_eq!(short, long);
        match short {
            Mechanism::Tacos(m) => {
                assert_eq!(m.chunks, Some(4));
                assert_eq!(m.config, base());
            }
            other => panic!("expected tacos, got {other:?}"),
        }
    }

    #[test]
    fn synth_overrides_layer_on_the_base_config() {
        let m = Mechanism::parse(
            "tacos:attempts=64,seed=7,prefer_cheap_links=false,chunks=16,reference_matching=true",
            &base(),
        )
        .unwrap();
        match m {
            Mechanism::Tacos(m) => {
                assert_eq!(m.chunks, Some(16));
                assert_eq!(m.config.attempts(), 64);
                assert_eq!(m.config.seed(), 7);
                assert!(!m.config.prefer_cheap_links());
                assert!(m.config.reference_matching());
            }
            other => panic!("expected tacos, got {other:?}"),
        }
        let plain = Mechanism::parse("tacos", &base()).unwrap();
        match plain {
            Mechanism::Tacos(m) => assert!(!m.config.reference_matching()),
            other => panic!("expected tacos, got {other:?}"),
        }
    }

    #[test]
    fn malformed_variants_are_rejected() {
        for bad in [
            "tacos:0",
            "tacos:attempts=0",
            "tacos:chunks=x",
            "tacos:frobnicate=1",
            "tacos:reference_matching=maybe",
            "tacos:seed=",
            "magic",
        ] {
            assert!(Mechanism::parse(bad, &base()).is_err(), "'{bad}' parsed");
        }
    }

    #[test]
    fn baselines_keep_their_paper_parameters() {
        assert!(matches!(
            parse_baseline("themis:64", 0).unwrap(),
            BaselineKind::Themis { chunks: 64 }
        ));
        assert!(matches!(
            parse_baseline("ccube:2", 0).unwrap(),
            BaselineKind::CCube { pipeline: 2 }
        ));
        match parse_baseline("taccl:2000", 7).unwrap() {
            BaselineKind::TacclLike(c) => {
                assert_eq!(c.node_budget, 2000);
                assert_eq!(c.seed, 7);
            }
            other => panic!("expected taccl, got {other:?}"),
        }
        assert!(parse_baseline("ring:2", 0).is_err());
        assert!(parse_baseline("multitree:2", 0).is_err());
    }
}
