//! BlueConnect (Cho et al., IBM JRD '19) and Themis (Rashidi et al., ISCA
//! '22) — manually designed topology-aware All-Reduce algorithms for
//! multi-dimensional networks (paper §V-A, §VI-B.3).
//!
//! **BlueConnect** decomposes All-Reduce into a Reduce-Scatter sweep across
//! dimensions 0, 1, …, D-1 followed by an All-Gather sweep back, running a
//! ring within every dimension group. The payload may be split into chunk
//! groups that pipeline through the phases.
//!
//! **Themis** additionally load-balances by letting each chunk group
//! traverse the dimensions in a rotated order. Crucially (and this is the
//! weakness the paper exploits in Fig. 16), both algorithms fix each
//! chunk's *path* per dimension to the in-dimension ring — on asymmetric
//! fabrics like the 3D grid, the missing wraparound links force routed
//! detours and contention that the algorithms cannot avoid.

use tacos_collective::algorithm::{
    AlgorithmBuilder, CollectiveAlgorithm, TransferId, TransferKind,
};
use tacos_collective::{ChunkId, Collective, CollectivePattern};
use tacos_topology::{NpuId, Topology};

use crate::error::BaselineError;

/// Generates the BlueConnect All-Reduce with `chunks` pipelined chunk
/// groups (the paper evaluates 4).
///
/// # Errors
/// * [`BaselineError::DimensionsRequired`] if the topology carries no
///   hierarchical dimension metadata.
/// * [`BaselineError::UnsupportedPattern`] for anything but All-Reduce.
pub fn blueconnect(
    topo: &Topology,
    collective: &Collective,
    chunks: usize,
) -> Result<CollectiveAlgorithm, BaselineError> {
    multi_dim_all_reduce(topo, collective, chunks, false)
}

/// Generates the Themis All-Reduce with `chunks` load-balanced chunk
/// groups (the paper evaluates 4 and 64).
///
/// # Errors
/// Same as [`blueconnect`].
pub fn themis(
    topo: &Topology,
    collective: &Collective,
    chunks: usize,
) -> Result<CollectiveAlgorithm, BaselineError> {
    multi_dim_all_reduce(topo, collective, chunks, true)
}

fn multi_dim_all_reduce(
    topo: &Topology,
    collective: &Collective,
    chunks: usize,
    rotate_dims: bool,
) -> Result<CollectiveAlgorithm, BaselineError> {
    let name = if rotate_dims { "themis" } else { "blueconnect" };
    if topo.num_npus() != collective.num_npus() {
        return Err(BaselineError::NpuCountMismatch {
            topology: topo.num_npus(),
            collective: collective.num_npus(),
        });
    }
    if collective.pattern() != CollectivePattern::AllReduce {
        return Err(BaselineError::UnsupportedPattern {
            baseline: name,
            pattern: collective.pattern().short_name(),
        });
    }
    if topo.dims().is_empty() {
        return Err(BaselineError::DimensionsRequired { baseline: name });
    }
    let n = topo.num_npus();
    let num_dims = topo.dims().len();
    let dim_sizes: Vec<usize> = topo.dims().iter().map(|d| d.size()).collect();
    let chunks = chunks.max(1);

    // Base chunk: the smallest unit any phase moves.
    let base_chunks = (chunks * n) as u64;
    let chunk_size = collective.total_size().split(base_chunks);
    let mut b = AlgorithmBuilder::new(name, n, chunk_size, collective.total_size());

    let groups_per_dim: Vec<Vec<Vec<NpuId>>> = (0..num_dims).map(|d| dim_groups(topo, d)).collect();

    for g in 0..chunks {
        // Themis rotates the dimension order per chunk group; BlueConnect
        // keeps 0..D for all groups.
        let order: Vec<usize> = if rotate_dims {
            (0..num_dims).map(|j| (j + g) % num_dims).collect()
        } else {
            (0..num_dims).collect()
        };
        // entry[npu]: receives gating the NPU's next-phase sends.
        let mut entry: Vec<Vec<TransferId>> = vec![Vec::new(); n];
        let chunk = ChunkId::new(g as u32);

        // Reduce-Scatter sweep.
        let mut shrink = 1u64; // product of dimension sizes processed so far
        for &dim in &order {
            shrink *= dim_sizes[dim] as u64;
            let count = (n as u64 / shrink).max(1) as u32;
            for members in &groups_per_dim[dim] {
                ring_phase(
                    &mut b,
                    members,
                    chunk,
                    count,
                    TransferKind::Reduce,
                    &mut entry,
                );
            }
        }
        // All-Gather sweep, reversed order, message sizes growing back.
        for &dim in order.iter().rev() {
            let count = (n as u64 / shrink).max(1) as u32;
            shrink /= dim_sizes[dim] as u64;
            for members in &groups_per_dim[dim] {
                ring_phase(
                    &mut b,
                    members,
                    chunk,
                    count,
                    TransferKind::Copy,
                    &mut entry,
                );
            }
        }
    }
    Ok(b.build())
}

/// All dimension-`d` groups: sets of NPUs that differ only in coordinate
/// `d`, ordered by that coordinate.
pub(crate) fn dim_groups(topo: &Topology, d: usize) -> Vec<Vec<NpuId>> {
    let n = topo.num_npus();
    let size = topo.dims()[d].size();
    let mut groups: Vec<Vec<NpuId>> = Vec::with_capacity(n / size);
    for npu in topo.npus() {
        if topo.coords(npu)[d] == 0 {
            let mut coords = topo.coords(npu);
            let members = (0..size)
                .map(|c| {
                    coords[d] = c;
                    topo.npu_at(&coords)
                })
                .collect();
            groups.push(members);
        }
    }
    groups
}

/// One unidirectional ring pass (d-1 steps) among `members`, each message
/// carrying `count` base chunks. `entry[npu]` gates each member's first
/// send and is replaced by this phase's receives.
fn ring_phase(
    b: &mut AlgorithmBuilder,
    members: &[NpuId],
    chunk: ChunkId,
    count: u32,
    kind: TransferKind,
    entry: &mut [Vec<TransferId>],
) {
    let d = members.len();
    if d < 2 {
        return;
    }
    let mut prev_recv: Vec<Vec<TransferId>> =
        members.iter().map(|m| entry[m.index()].clone()).collect();
    let mut phase_recv: Vec<Vec<TransferId>> = vec![Vec::new(); d];
    for _step in 0..d - 1 {
        let mut this_recv: Vec<Vec<TransferId>> = vec![Vec::new(); d];
        for (m, &src) in members.iter().enumerate() {
            let dst = members[(m + 1) % d];
            let id = b.push_counted(chunk, count, src, dst, kind, prev_recv[m].clone());
            this_recv[(m + 1) % d] = vec![id];
            phase_recv[(m + 1) % d].push(id);
        }
        prev_recv = this_recv;
    }
    for (m, member) in members.iter().enumerate() {
        entry[member.index()] = phase_recv[m].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_sim::Simulator;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time};

    fn torus() -> Topology {
        let spec = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
        Topology::torus_3d(4, 4, 4, spec).unwrap()
    }

    #[test]
    fn dim_groups_partition() {
        let t = torus();
        for d in 0..3 {
            let groups = dim_groups(&t, d);
            assert_eq!(groups.len(), 16);
            let mut seen = std::collections::HashSet::new();
            for g in &groups {
                assert_eq!(g.len(), 4);
                for m in g {
                    assert!(seen.insert(*m));
                }
            }
            assert_eq!(seen.len(), 64);
        }
    }

    #[test]
    fn blueconnect_completes_on_torus() {
        let t = torus();
        let coll = Collective::all_reduce(64, ByteSize::mb(64)).unwrap();
        let algo = blueconnect(&t, &coll, 4).unwrap();
        let report = Simulator::new().simulate(&t, &algo).unwrap();
        assert!(report.collective_time() > Time::ZERO);
        // The unidirectional per-dimension rings use exactly half of the
        // bidirectional torus links.
        let used = report
            .link_bytes()
            .iter()
            .filter(|&&bytes| bytes > 0)
            .count();
        assert_eq!(used, t.num_links() / 2);
    }

    #[test]
    fn themis_beats_blueconnect_with_chunking() {
        // Rotated dimension orders spread load across dimensions at any
        // instant, so Themis should not be slower.
        let t = torus();
        let coll = Collective::all_reduce(64, ByteSize::mb(64)).unwrap();
        let bc = Simulator::new()
            .simulate(&t, &blueconnect(&t, &coll, 4).unwrap())
            .unwrap()
            .collective_time();
        let th = Simulator::new()
            .simulate(&t, &themis(&t, &coll, 4).unwrap())
            .unwrap()
            .collective_time();
        assert!(th <= bc, "themis {th} should not lose to blueconnect {bc}");
    }

    #[test]
    fn themis_struggles_on_asymmetric_grid() {
        // Paper Fig. 16: on the 3D grid (no wraparound) the per-dimension
        // rings force routed detours; utilization collapses vs. the torus.
        let spec = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
        let grid = Topology::hypercube_3d(4, 4, 4, spec).unwrap();
        let torus = torus();
        let coll = Collective::all_reduce(64, ByteSize::mb(64)).unwrap();
        let on_torus = Simulator::new()
            .simulate(&torus, &themis(&torus, &coll, 4).unwrap())
            .unwrap()
            .collective_time();
        let on_grid = Simulator::new()
            .simulate(&grid, &themis(&grid, &coll, 4).unwrap())
            .unwrap()
            .collective_time();
        assert!(
            on_grid > on_torus,
            "grid {on_grid} should be slower than torus {on_torus}"
        );
    }

    #[test]
    fn requires_dimensions() {
        let spec = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
        let fc = Topology::fully_connected(8, spec).unwrap();
        let coll = Collective::all_reduce(8, ByteSize::mb(8)).unwrap();
        assert!(matches!(
            blueconnect(&fc, &coll, 4),
            Err(BaselineError::DimensionsRequired { .. })
        ));
    }

    #[test]
    fn requires_all_reduce() {
        let t = torus();
        let coll = Collective::all_gather(64, ByteSize::mb(64)).unwrap();
        assert!(matches!(
            themis(&t, &coll, 4),
            Err(BaselineError::UnsupportedPattern { .. })
        ));
    }
}
