//! **Ablations** of the design choices DESIGN.md calls out:
//!
//! 1. *Low-cost link prioritization* (paper §IV-F) — on/off across the
//!    heterogeneous topologies of Fig. 15.
//! 2. *Best-of-N randomized search* (the paper's 64-thread runs) — N ∈
//!    {1, 8, 64} on the asymmetric mesh.
//! 3. *Chunking factor* — k ∈ {1, 4, 16} on a homogeneous torus (helps)
//!    vs. the heterogeneous 3D-RFS (floods the slow links; see
//!    EXPERIMENTS.md).

use tacos_bench::experiments::{gbps, write_results_csv};
use tacos_collective::{Collective, CollectivePattern};
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_report::{fmt_f64, Table};
use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time, Topology};

fn bw_with(topo: &Topology, coll: &Collective, config: SynthesizerConfig) -> f64 {
    let r = Synthesizer::new(config).synthesize(topo, coll).unwrap();
    gbps(coll.total_size(), r.collective_time())
}

fn main() {
    let alpha = Time::from_micros(0.5);
    let mut csv = vec![vec![
        "ablation".to_string(),
        "setting".into(),
        "topology".into(),
        "bandwidth_gbps".into(),
    ]];

    println!("=== Ablation 1: low-cost link prioritization (§IV-F) ===\n");
    let mut table = Table::new(vec![
        "topology",
        "prefer-cheap ON",
        "prefer-cheap OFF",
        "gain",
    ]);
    let hetero: Vec<Topology> = vec![
        Topology::rfs_3d(2, 4, 4, alpha, [200.0, 100.0, 50.0]).unwrap(),
        Topology::dragonfly(
            5,
            4,
            LinkSpec::new(alpha, Bandwidth::gbps(400.0)),
            LinkSpec::new(alpha, Bandwidth::gbps(200.0)),
        )
        .unwrap(),
    ];
    for topo in &hetero {
        let coll = Collective::all_reduce(topo.num_npus(), ByteSize::mb(512)).unwrap();
        let base = SynthesizerConfig::default()
            .with_attempts(8)
            .with_record_transfers(false);
        let on = bw_with(topo, &coll, base.clone().with_prefer_cheap_links(true));
        let off = bw_with(topo, &coll, base.clone().with_prefer_cheap_links(false));
        table.row(vec![
            topo.name().into(),
            fmt_f64(on),
            fmt_f64(off),
            format!("{:.2}x", on / off),
        ]);
        csv.push(vec![
            "prefer_cheap".into(),
            "on".into(),
            topo.name().into(),
            format!("{on}"),
        ]);
        csv.push(vec![
            "prefer_cheap".into(),
            "off".into(),
            topo.name().into(),
            format!("{off}"),
        ]);
    }
    print!("{table}");

    println!("\n=== Ablation 2: best-of-N randomized search ===\n");
    let mesh = Topology::mesh_2d(6, 6, LinkSpec::new(alpha, Bandwidth::gbps(50.0))).unwrap();
    let coll = Collective::all_gather(36, ByteSize::mb(36)).unwrap();
    let mut table = Table::new(vec!["attempts", "AG bandwidth (GB/s)"]);
    for attempts in [1usize, 8, 64] {
        let bw = bw_with(
            &mesh,
            &coll,
            SynthesizerConfig::default()
                .with_attempts(attempts)
                .with_record_transfers(false),
        );
        table.row(vec![attempts.to_string(), fmt_f64(bw)]);
        csv.push(vec![
            "attempts".into(),
            attempts.to_string(),
            mesh.name().into(),
            format!("{bw}"),
        ]);
    }
    print!("{table}");

    println!("\n=== Ablation 3: chunking factor (homogeneous vs heterogeneous) ===\n");
    let torus = Topology::torus_3d(4, 4, 4, LinkSpec::new(alpha, Bandwidth::gbps(50.0))).unwrap();
    let rfs_wide = Topology::rfs_3d(2, 4, 8, alpha, [200.0, 100.0, 50.0]).unwrap();
    // Narrow inter-node cut: the configuration where chunk flooding bites.
    let rfs_narrow = Topology::rfs_3d(2, 4, 2, alpha, [200.0, 100.0, 50.0]).unwrap();
    let mut table = Table::new(vec!["topology", "size", "k=1", "k=4", "k=16"]);
    for (topo, size) in [
        (&torus, ByteSize::gb(1)),
        (&rfs_wide, ByteSize::gb(1)),
        (&rfs_narrow, ByteSize::mb(256)),
    ] {
        let mut row = vec![topo.name().to_string(), format!("{size}")];
        for k in [1usize, 4, 16] {
            let coll =
                Collective::with_chunking(CollectivePattern::AllReduce, topo.num_npus(), k, size)
                    .unwrap();
            let bw = bw_with(
                topo,
                &coll,
                SynthesizerConfig::default()
                    .with_attempts(4)
                    .with_record_transfers(false),
            );
            row.push(fmt_f64(bw));
            csv.push(vec![
                "chunking".into(),
                format!("k={k}"),
                topo.name().into(),
                format!("{bw}"),
            ]);
        }
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nExpected: prioritization and search width help modestly; chunking\n\
         helps on the homogeneous torus and on heterogeneous fabrics with\n\
         wide slow tiers, but *hurts* on the narrow-cut 3D-RFS(2x4x2):\n\
         greedy matching floods the scarce inter-node links with redundant\n\
         chunk crossings (the reproduction finding in EXPERIMENTS.md)."
    );
    write_results_csv("ablation_synthesis.csv", &csv);
}
