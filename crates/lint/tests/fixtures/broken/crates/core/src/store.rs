//! Broken fixture: publishes with `fs::rename` but never fsyncs the
//! temporary, so a crash can publish an empty or truncated file.

use std::fs;
use std::io;
use std::path::Path;

pub fn publish(tmp: &Path, dst: &Path) -> io::Result<()> {
    fs::rename(tmp, dst)
}
