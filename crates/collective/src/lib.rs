//! # tacos-collective
//!
//! Collective communication substrate for the TACOS reproduction: the chunk
//! model, collective patterns and their pre/postconditions (paper Fig. 4 and
//! §IV-C), and the [`algorithm::CollectiveAlgorithm`] intermediate
//! representation shared by the synthesizer, the baseline generators, and
//! the congestion-aware simulator.
//!
//! ```
//! use tacos_collective::{Collective, CollectivePattern};
//! use tacos_topology::ByteSize;
//!
//! // A 1 GB All-Reduce across 64 NPUs, split 4 ways per NPU (256 chunks).
//! let coll = Collective::with_chunking(
//!     CollectivePattern::AllReduce, 64, 4, ByteSize::gb(1))?;
//! assert_eq!(coll.num_chunks(), 256);
//! # Ok::<(), tacos_collective::CollectiveError>(())
//! ```

#![warn(missing_docs)]

pub mod algorithm;
mod bits;
mod chunk;
mod collective;
mod error;
pub mod export;
mod matrix;
mod pattern;

pub use chunk::{ChunkId, ChunkSet};
pub use collective::Collective;
pub use error::CollectiveError;
pub use matrix::ChunkMatrix;
pub use pattern::CollectivePattern;

/// A chunk with its size, used in documentation and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// The chunk's identifier.
    pub id: ChunkId,
    /// The chunk's payload size.
    pub size: tacos_topology::ByteSize,
}
