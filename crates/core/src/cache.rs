//! On-disk cache of synthesized algorithms.
//!
//! Synthesis is deterministic per (topology, collective, config, seed), so
//! production deployments — like the CCLs the paper targets — synthesize
//! once per fabric and reuse the schedule. [`AlgorithmCache`] keys the
//! compact serialization (`collective::export::to_compact`) by a structural
//! fingerprint of all three inputs.

use std::io;
use std::path::{Path, PathBuf};

use tacos_collective::algorithm::CollectiveAlgorithm;
use tacos_collective::{export, Collective};
use tacos_topology::Topology;

use crate::error::SynthesisError;
use crate::synthesis::Synthesizer;

/// Version of the matcher's seeded-schedule semantics, folded into every
/// synthesis cache key: the same (topology, collective, seed) produces a
/// different schedule across matcher revisions, so entries from older
/// builds must not hit. 2 = PR 2's zero-allocation matching core.
/// 3 = event-driven matching's round RNG protocol: a round draws one salt
/// and sorts the worklist by salted hash instead of shuffling it, so
/// seeded schedules differ from version 2 (see PERF.md).
///
/// Public because persisted cache containers record it in their headers
/// (see [`crate::WarmCache`]): a snapshot written by a different matcher
/// revision is rejected wholesale at load with a readable error instead
/// of being carried as unreachable dead weight.
pub const MATCHER_VERSION: u64 = 3;

/// A directory of cached `.tacos` schedules.
///
/// ```no_run
/// use tacos_core::{AlgorithmCache, Synthesizer, SynthesizerConfig};
/// use tacos_collective::Collective;
/// use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = Topology::mesh_2d(4, 4, LinkSpec::new(
///     Time::from_micros(0.5), Bandwidth::gbps(50.0)))?;
/// let coll = Collective::all_reduce(16, ByteSize::mb(64))?;
/// let cache = AlgorithmCache::new(".tacos-cache")?;
/// let synth = Synthesizer::new(SynthesizerConfig::default());
/// // First call synthesizes and stores; later calls load from disk.
/// let algo = cache.synthesize_cached(&synth, &topo, &coll)?;
/// # let _ = algo;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AlgorithmCache {
    dir: PathBuf,
}

/// Whether a cached lookup was served from disk or freshly generated.
///
/// Returned by the `*_traced` cache entry points so callers (e.g. the
/// scenario runner's resumability accounting) can distinguish incremental
/// re-runs from cold synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The algorithm was loaded from the cache directory.
    Hit,
    /// The algorithm was generated (and stored) by this call.
    Miss,
}

impl AlgorithmCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    /// Propagates filesystem errors from directory creation.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(AlgorithmCache {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Structural fingerprint of (topology, collective, synthesizer
    /// config): FNV-1a over every link's endpoints and α–β parameters,
    /// the collective's shape, and the search settings.
    pub fn key(synth: &Synthesizer, topo: &Topology, collective: &Collective) -> String {
        Self::key_with_tag("tacos", synth, topo, collective)
    }

    /// Like [`AlgorithmCache::key`], but namespaced by an algorithm tag so
    /// non-TACOS generators (baselines run by the scenario engine) can
    /// share the same cache directory without key collisions.
    pub fn key_with_tag(
        tag: &str,
        synth: &Synthesizer,
        topo: &Topology,
        collective: &Collective,
    ) -> String {
        let mut h = Fnv::new();
        // Bumped whenever the matcher's seeded-schedule semantics change
        // (e.g. PR 2's bit-granular pick rotation and salt-derived probe
        // offsets): a persistent cache dir written by an older build must
        // miss, not serve schedules the current matcher would not emit.
        h.write_u64(MATCHER_VERSION);
        h.write_bytes(tag.as_bytes());
        write_inputs(&mut h, topo, collective);
        let config = synth.config();
        h.write_u64(config.seed());
        h.write_u64(config.attempts() as u64);
        h.write_u64(u64::from(config.prefer_cheap_links()));
        format!(
            "{tag}-{}-{:016x}",
            collective.pattern().short_name(),
            h.finish()
        )
    }

    /// A fingerprint for algorithm generators that have no synthesizer
    /// configuration — the deterministic baselines. `salt` folds in
    /// whatever generator state matters (a randomized baseline's seed;
    /// 0 for fully deterministic ones), so seed/attempt sweeps don't
    /// spuriously miss on algorithms that ignore them.
    pub fn key_for_generator(
        tag: &str,
        topo: &Topology,
        collective: &Collective,
        salt: u64,
    ) -> String {
        let mut h = Fnv::new();
        // Randomized generators (the TACCL-like baseline) share the
        // bitset pick kernels whose seeded semantics MATCHER_VERSION
        // tracks, so their persisted entries must roll over with it too.
        h.write_u64(MATCHER_VERSION);
        h.write_bytes(tag.as_bytes());
        write_inputs(&mut h, topo, collective);
        h.write_u64(salt);
        format!(
            "{tag}-{}-{:016x}",
            collective.pattern().short_name(),
            h.finish()
        )
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.tacos"))
    }

    /// Loads a cached algorithm by key, if present and parseable.
    pub fn load(&self, key: &str) -> Option<CollectiveAlgorithm> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        export::from_compact(&text).ok()
    }

    /// Stores an algorithm under the given key.
    ///
    /// The write is atomic (temp file + rename): the compact format has no
    /// trailer, so a truncated file left by a killed process — or seen by
    /// a concurrent reader sharing the cache directory — would otherwise
    /// parse as a valid but incomplete algorithm and poison every future
    /// run of that point.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn store(&self, key: &str, algo: &CollectiveAlgorithm) -> io::Result<()> {
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{key}.tmp.{}.{seq}", std::process::id()));
        let written = (|| {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(export::to_compact(algo).as_bytes())?;
            // fsync before the rename: otherwise a crash can land the
            // rename while the data blocks have not hit disk, leaving a
            // durable *empty* cache entry in place of the old state.
            file.sync_all()
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        let result = std::fs::rename(&tmp, self.path_for(key));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Synthesizes through the cache: returns the stored schedule when the
    /// fingerprint matches, otherwise synthesizes, stores, and returns it.
    ///
    /// # Errors
    /// Propagates synthesis errors; storage failures are swallowed (the
    /// result is still returned).
    pub fn synthesize_cached(
        &self,
        synth: &Synthesizer,
        topo: &Topology,
        collective: &Collective,
    ) -> Result<CollectiveAlgorithm, SynthesisError> {
        self.synthesize_cached_traced(synth, topo, collective)
            .map(|(algo, _)| algo)
    }

    /// [`AlgorithmCache::synthesize_cached`], but also reports whether the
    /// schedule came from disk or was freshly synthesized.
    ///
    /// # Errors
    /// Propagates synthesis errors; storage failures are swallowed.
    pub fn synthesize_cached_traced(
        &self,
        synth: &Synthesizer,
        topo: &Topology,
        collective: &Collective,
    ) -> Result<(CollectiveAlgorithm, CacheOutcome), SynthesisError> {
        self.synthesize_cached_traced_with(
            synth,
            topo,
            collective,
            &mut crate::SynthesisScratch::new(),
        )
    }

    /// [`AlgorithmCache::synthesize_cached_traced`] with caller-provided
    /// synthesis working memory: on a cache miss, the synthesis reuses
    /// `scratch` (see [`Synthesizer::synthesize_with`]). Long-running
    /// sweeps keep one scratch per worker thread.
    ///
    /// # Errors
    /// Propagates synthesis errors; storage failures are swallowed.
    pub fn synthesize_cached_traced_with(
        &self,
        synth: &Synthesizer,
        topo: &Topology,
        collective: &Collective,
        scratch: &mut crate::SynthesisScratch,
    ) -> Result<(CollectiveAlgorithm, CacheOutcome), SynthesisError> {
        let key = Self::key(synth, topo, collective);
        self.load_or_insert_with(&key, || {
            synth
                .synthesize_with(topo, collective, scratch)
                .map(|r| r.into_algorithm())
        })
    }

    /// Generic cache entry point: loads `key` if present, otherwise calls
    /// `generate`, stores its output, and reports [`CacheOutcome::Miss`].
    ///
    /// The error type is the generator's own — this is what lets the
    /// scenario runner cache baseline generators (whose errors are not
    /// [`SynthesisError`]) alongside TACOS syntheses.
    ///
    /// # Errors
    /// Propagates `generate`'s error; storage failures are swallowed.
    pub fn load_or_insert_with<E>(
        &self,
        key: &str,
        generate: impl FnOnce() -> Result<CollectiveAlgorithm, E>,
    ) -> Result<(CollectiveAlgorithm, CacheOutcome), E> {
        if let Some(algo) = self.load(key) {
            return Ok((algo, CacheOutcome::Hit));
        }
        let algo = generate()?;
        let _ = self.store(key, &algo);
        Ok((algo, CacheOutcome::Miss))
    }
}

/// Hashes the structural inputs common to every cache key: each link's
/// endpoints and α–β parameters, and the collective's shape.
fn write_inputs(h: &mut Fnv, topo: &Topology, collective: &Collective) {
    h.write_u64(topo.num_npus() as u64);
    for link in topo.links() {
        h.write_u64(u64::from(link.src().raw()) << 32 | u64::from(link.dst().raw()));
        h.write_u64(link.spec().alpha().as_ps());
        h.write_u64(link.spec().bandwidth().as_bytes_per_sec().to_bits());
    }
    h.write_bytes(collective.pattern().short_name().as_bytes());
    if let Some(root) = collective.pattern().root() {
        h.write_u64(u64::from(root.raw()));
    }
    h.write_u64(collective.num_npus() as u64);
    h.write_u64(collective.chunks_per_npu() as u64);
    h.write_u64(collective.total_size().as_u64());
}

/// Minimal FNV-1a, enough for cache fingerprints (not cryptographic).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthesizerConfig;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time};

    fn setup() -> (Topology, Collective, Synthesizer) {
        let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
        let topo = Topology::mesh_2d(3, 3, spec).unwrap();
        let coll = Collective::all_gather(9, ByteSize::mb(9)).unwrap();
        let synth = Synthesizer::new(SynthesizerConfig::default().with_seed(4));
        (topo, coll, synth)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tacos-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_round_trip() {
        let (topo, coll, synth) = setup();
        let dir = temp_dir("rt");
        let cache = AlgorithmCache::new(&dir).unwrap();
        let first = cache.synthesize_cached(&synth, &topo, &coll).unwrap();
        // One .tacos file appeared.
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1);
        // Second call loads the identical algorithm from disk.
        let second = cache.synthesize_cached(&synth, &topo, &coll).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_sensitive_to_inputs() {
        let (topo, coll, synth) = setup();
        let base = AlgorithmCache::key(&synth, &topo, &coll);
        // Different seed, different key.
        let synth2 = Synthesizer::new(SynthesizerConfig::default().with_seed(5));
        assert_ne!(base, AlgorithmCache::key(&synth2, &topo, &coll));
        // Different size, different key.
        let coll2 = Collective::all_gather(9, ByteSize::mb(18)).unwrap();
        assert_ne!(base, AlgorithmCache::key(&synth, &topo, &coll2));
        // Different topology (one link removed), different key.
        let degraded = topo.without_link(tacos_topology::LinkId::new(0));
        assert_ne!(base, AlgorithmCache::key(&synth, &degraded, &coll));
        // Same inputs, same key (stable).
        assert_eq!(base, AlgorithmCache::key(&synth, &topo, &coll));
    }

    #[test]
    fn every_synthesizer_config_knob_is_in_the_key() {
        // The scenario engine sweeps synth.* axes (seed, attempts,
        // prefer_cheap_links, and chunking via the collective); a knob
        // missing from the fingerprint would serve one configuration's
        // schedule to another — a stale cross-config hit.
        let (topo, coll, _) = setup();
        let key_of = |config: SynthesizerConfig| {
            AlgorithmCache::key(&Synthesizer::new(config), &topo, &coll)
        };
        let base_config = SynthesizerConfig::default().with_seed(4);
        let base = key_of(base_config.clone());
        assert_ne!(base, key_of(base_config.clone().with_attempts(8)));
        assert_ne!(
            base,
            key_of(base_config.clone().with_prefer_cheap_links(false))
        );
        assert_ne!(base, key_of(base_config.clone().with_seed(5)));
        // Chunking lives on the collective and is fingerprinted there.
        let chunked = Collective::with_chunking(
            tacos_collective::CollectivePattern::AllGather,
            9,
            4,
            ByteSize::mb(9),
        )
        .unwrap();
        let synth = Synthesizer::new(base_config.clone());
        assert_ne!(
            AlgorithmCache::key(&synth, &topo, &coll),
            AlgorithmCache::key(&synth, &topo, &chunked)
        );
        // All four distinct configurations produce four distinct keys.
        let keys = [
            base,
            key_of(base_config.clone().with_attempts(8)),
            key_of(base_config.clone().with_prefer_cheap_links(false)),
            key_of(base_config.with_seed(5)),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn traced_outcome_reports_miss_then_hit() {
        let (topo, coll, synth) = setup();
        let dir = temp_dir("traced");
        let cache = AlgorithmCache::new(&dir).unwrap();
        let (first, o1) = cache
            .synthesize_cached_traced(&synth, &topo, &coll)
            .unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (second, o2) = cache
            .synthesize_cached_traced(&synth, &topo, &coll)
            .unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tagged_keys_namespace_the_cache() {
        let (topo, coll, synth) = setup();
        let tacos = AlgorithmCache::key_with_tag("tacos", &synth, &topo, &coll);
        let ring = AlgorithmCache::key_with_tag("ring", &synth, &topo, &coll);
        assert_ne!(tacos, ring);
        assert!(tacos.starts_with("tacos-"));
        assert!(ring.starts_with("ring-"));
        // The default key is the "tacos" tag.
        assert_eq!(tacos, AlgorithmCache::key(&synth, &topo, &coll));
    }

    #[test]
    fn generator_keys_ignore_synth_config_but_respect_salt() {
        let (topo, coll, _) = setup();
        let base = AlgorithmCache::key_for_generator("ring", &topo, &coll, 0);
        // Same inputs, same key — regardless of any synthesizer config.
        assert_eq!(
            base,
            AlgorithmCache::key_for_generator("ring", &topo, &coll, 0)
        );
        // Salt (a randomized generator's seed) changes the key.
        assert_ne!(
            base,
            AlgorithmCache::key_for_generator("ring", &topo, &coll, 7)
        );
        // Tag namespaces generators.
        assert_ne!(
            base,
            AlgorithmCache::key_for_generator("direct", &topo, &coll, 0)
        );
        // Different topology, different key.
        let degraded = topo.without_link(tacos_topology::LinkId::new(0));
        assert_ne!(
            base,
            AlgorithmCache::key_for_generator("ring", &degraded, &coll, 0)
        );
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let (topo, coll, synth) = setup();
        let dir = temp_dir("atomic");
        let cache = AlgorithmCache::new(&dir).unwrap();
        let algo = synth.synthesize(&topo, &coll).unwrap().into_algorithm();
        cache.store("k", &algo).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, ["k.tacos"]);
        assert_eq!(cache.load("k").unwrap(), algo);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_is_none() {
        let dir = temp_dir("miss");
        let cache = AlgorithmCache::new(&dir).unwrap();
        assert!(cache.load("nonexistent").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
