//! The count-ratcheted baseline: grandfathered findings live in a
//! committed `lint.baseline`, keyed by `(rule, file, token)` with an
//! allowed count. Findings within the budget are reported but pass;
//! anything beyond it fails. Counts only ratchet *down* over time —
//! `--fix-baseline` regenerates the file from what is actually present,
//! so fixing a finding shrinks the budget and reintroducing it fails.
//!
//! Keying on `(rule, file, token)` instead of line numbers keeps the
//! baseline stable across unrelated edits to the same file.

use std::collections::BTreeMap;

use crate::Finding;

/// Parsed baseline: fingerprint -> allowed count.
pub type Baseline = BTreeMap<(String, String, String), usize>;

/// Parses `lint.baseline` text. Unparseable lines are ignored rather
/// than fatal: a corrupted baseline then *tightens* the gate.
pub fn parse(text: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(file), Some(token), Some(count)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        out.insert((rule.into(), file.into(), token.into()), count);
    }
    out
}

/// Renders a baseline for the given findings (used by `--fix-baseline`).
pub fn render(findings: &[Finding]) -> String {
    let mut counts = Baseline::new();
    for f in findings {
        *counts
            .entry((f.rule.as_str().into(), f.file.clone(), f.token.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# tacos-lint baseline: grandfathered findings, keyed rule<TAB>file<TAB>token<TAB>count.\n\
         # New findings always fail; regenerate with `tacos lint --fix-baseline` only to\n\
         # ratchet counts down after fixing, never to admit new debt.\n",
    );
    for ((rule, file, token), count) in &counts {
        out.push_str(&format!("{rule}\t{file}\t{token}\t{count}\n"));
    }
    out
}

/// Splits findings into (new, baselined_count) against a baseline.
/// Within one fingerprint the findings with the lowest lines are the
/// grandfathered ones — deterministic, and stable under appends.
pub fn apply(findings: Vec<Finding>, baseline: &Baseline) -> (Vec<Finding>, usize) {
    let mut used = Baseline::new();
    let mut fresh = Vec::new();
    let mut grandfathered = 0usize;
    // Findings arrive sorted by (file, line, ..) from the caller.
    for f in findings {
        let key = (f.rule.as_str().to_string(), f.file.clone(), f.token.clone());
        let budget = baseline.get(&key).copied().unwrap_or(0);
        let u = used.entry(key).or_insert(0);
        if *u < budget {
            *u += 1;
            grandfathered += 1;
        } else {
            fresh.push(f);
        }
    }
    (fresh, grandfathered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn finding(file: &str, line: u32, token: &str) -> Finding {
        Finding {
            rule: Rule::Panic,
            file: file.into(),
            line,
            token: token.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip_and_budget() {
        let fs = vec![finding("a.rs", 1, "unwrap"), finding("a.rs", 9, "unwrap")];
        let text = render(&fs);
        let base = parse(&text);
        assert_eq!(base.len(), 1);
        assert_eq!(
            base[&(
                "panic".to_string(),
                "a.rs".to_string(),
                "unwrap".to_string()
            )],
            2
        );
        // Within budget: all grandfathered.
        let (fresh, old) = apply(fs.clone(), &base);
        assert!(fresh.is_empty());
        assert_eq!(old, 2);
        // One extra unwrap: the highest line fails.
        let mut more = fs;
        more.push(finding("a.rs", 20, "unwrap"));
        let (fresh, old) = apply(more, &base);
        assert_eq!(old, 2);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 20);
    }

    #[test]
    fn unknown_fingerprints_always_fail() {
        let (fresh, old) = apply(vec![finding("b.rs", 3, "expect")], &Baseline::new());
        assert_eq!(old, 0);
        assert_eq!(fresh.len(), 1);
    }
}
