//! Materialized Time-expanded Network (paper §IV-A, Figs. 6–7).
//!
//! For a **homogeneous** topology every link transmission takes the same
//! time, so the TEN unrolls into uniform time spans: NPUs form columns,
//! every physical link becomes an edge from `(src, t)` to `(dst, t+1)`, and
//! a collective algorithm is an assignment of chunks to TEN edges
//! (*link–chunk matches*). This module materializes that graph — it is the
//! reference representation used for visualization, for unit-testing the
//! synthesizer against the paper's worked examples, and by the TACCL-like
//! bounded-optimal baseline.
//!
//! Heterogeneous topologies use the event-driven [`ExpandingTen`] instead
//! (paper Fig. 12 generalizes the time axis to event times).
//!
//! [`ExpandingTen`]: crate::ExpandingTen

use std::fmt;

use tacos_collective::algorithm::CollectiveAlgorithm;
use tacos_collective::ChunkId;
use tacos_topology::{ByteSize, LinkId, NpuId, Time, Topology};

use crate::error::TenError;

/// A vertex of the TEN: NPU `npu` at the start of time span `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenVertex {
    /// The NPU (the TEN column).
    pub npu: NpuId,
    /// The time-span index (the TEN row).
    pub step: usize,
}

impl fmt::Display for TenVertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, t={})", self.npu, self.step)
    }
}

/// A materialized uniform-step TEN over a homogeneous topology, with
/// link–chunk occupancy.
///
/// ```
/// use tacos_topology::{Bandwidth, ByteSize, LinkSpec, RingOrientation, Time, Topology};
/// use tacos_ten::TimeExpandedNetwork;
/// let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
/// let ring = Topology::ring(4, spec, RingOrientation::Unidirectional)?;
/// let mut ten = TimeExpandedNetwork::new(&ring, ByteSize::mb(1))?;
/// ten.expand(); // t=0 .. t=1
/// assert_eq!(ten.steps(), 1);
/// assert_eq!(ten.step_duration(), spec.cost(ByteSize::mb(1)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimeExpandedNetwork {
    num_npus: usize,
    link_endpoints: Vec<(NpuId, NpuId)>,
    step_duration: Time,
    /// `occupancy[step][link]` = chunk matched on that TEN edge.
    occupancy: Vec<Vec<Option<ChunkId>>>,
}

impl TimeExpandedNetwork {
    /// Builds an empty (zero-step) TEN for `topo` with chunk transmissions
    /// of `chunk_size`.
    ///
    /// # Errors
    /// [`TenError::HeterogeneousTopology`] if link costs differ (use
    /// [`ExpandingTen`](crate::ExpandingTen) instead).
    pub fn new(topo: &Topology, chunk_size: ByteSize) -> Result<Self, TenError> {
        let mut costs = topo.links().iter().map(|l| l.cost(chunk_size));
        let step_duration = costs.next().ok_or(TenError::NoLinks)?;
        if costs.any(|c| c != step_duration) {
            return Err(TenError::HeterogeneousTopology);
        }
        Ok(TimeExpandedNetwork {
            num_npus: topo.num_npus(),
            link_endpoints: topo.links().iter().map(|l| (l.src(), l.dst())).collect(),
            step_duration,
            occupancy: Vec::new(),
        })
    }

    /// Number of NPU columns.
    pub fn num_npus(&self) -> usize {
        self.num_npus
    }

    /// Number of physical links (TEN edges per time span).
    pub fn num_links(&self) -> usize {
        self.link_endpoints.len()
    }

    /// Number of expanded time spans.
    pub fn steps(&self) -> usize {
        self.occupancy.len()
    }

    /// Wall-clock duration of one time span (`α + β·chunk`).
    pub fn step_duration(&self) -> Time {
        self.step_duration
    }

    /// Wall-clock time at the *start* of time span `step`.
    pub fn time_of_step(&self, step: usize) -> Time {
        self.step_duration * step as u64
    }

    /// Appends one more time span (paper Alg. 2's "Expand `TEN[t]`"), with
    /// all edges unoccupied. Returns its index.
    pub fn expand(&mut self) -> usize {
        self.occupancy.push(vec![None; self.link_endpoints.len()]);
        self.occupancy.len() - 1
    }

    /// Source and destination of the TEN edge for `link` (same at every
    /// step).
    pub fn endpoints(&self, link: LinkId) -> (NpuId, NpuId) {
        self.link_endpoints[link.index()]
    }

    /// The chunk occupying `link` during `step`, if any.
    ///
    /// # Panics
    /// Panics if `step` or `link` is out of range.
    pub fn occupant(&self, step: usize, link: LinkId) -> Option<ChunkId> {
        self.occupancy[step][link.index()]
    }

    /// Matches `chunk` onto `link` during `step` (a *link–chunk match*).
    ///
    /// # Errors
    /// [`TenError::EdgeOccupied`] if the edge already carries a chunk —
    /// the congestion-freedom invariant of §IV-D.
    pub fn occupy(&mut self, step: usize, link: LinkId, chunk: ChunkId) -> Result<(), TenError> {
        let slot = &mut self.occupancy[step][link.index()];
        if slot.is_some() {
            return Err(TenError::EdgeOccupied {
                step,
                link: link.index(),
            });
        }
        *slot = Some(chunk);
        Ok(())
    }

    /// Total number of matched edges across all steps.
    pub fn matched_edges(&self) -> usize {
        self.occupancy
            .iter()
            .map(|step| step.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    /// Link utilization of `step`: matched edges / total edges.
    pub fn step_utilization(&self, step: usize) -> f64 {
        let total = self.link_endpoints.len();
        if total == 0 {
            return 0.0;
        }
        let used = self.occupancy[step].iter().filter(|s| s.is_some()).count();
        used as f64 / total as f64
    }

    /// Projects a fully scheduled homogeneous algorithm onto a fresh TEN —
    /// the representation of paper Fig. 7(b).
    ///
    /// # Errors
    /// * [`TenError::UnscheduledAlgorithm`] if a transfer lacks a schedule.
    /// * [`TenError::MisalignedSchedule`] if a transfer does not start on a
    ///   step boundary or lasts a different amount than one step.
    /// * [`TenError::EdgeOccupied`] if two transfers collide (the algorithm
    ///   was not contention-free).
    pub fn represent(topo: &Topology, algorithm: &CollectiveAlgorithm) -> Result<Self, TenError> {
        let mut ten = TimeExpandedNetwork::new(topo, algorithm.chunk_size())?;
        for t in algorithm.transfers() {
            let (start, duration, link) = match (t.start(), t.duration(), t.link()) {
                (Some(s), Some(d), Some(l)) => (s, d, l),
                _ => return Err(TenError::UnscheduledAlgorithm),
            };
            let step_ps = ten.step_duration.as_ps();
            if duration != ten.step_duration || start.as_ps() % step_ps != 0 {
                return Err(TenError::MisalignedSchedule);
            }
            let step = (start.as_ps() / step_ps) as usize;
            while ten.steps() <= step {
                ten.expand();
            }
            ten.occupy(step, link, t.chunk())?;
        }
        Ok(ten)
    }
}

impl fmt::Display for TimeExpandedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TEN({} NPUs x {} steps, {}/{} edges matched)",
            self.num_npus,
            self.steps(),
            self.matched_edges(),
            self.steps() * self.num_links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_topology::{Bandwidth, LinkSpec, RingOrientation, TopologyBuilder};

    fn spec() -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
    }

    fn fig6a() -> Topology {
        let mut b = TopologyBuilder::new("fig6a");
        b.npus(3);
        b.link(NpuId::new(0), NpuId::new(1), spec());
        b.link(NpuId::new(0), NpuId::new(2), spec());
        b.link(NpuId::new(1), NpuId::new(2), spec());
        b.link(NpuId::new(2), NpuId::new(0), spec());
        b.build().unwrap()
    }

    #[test]
    fn fig6_expansion() {
        // Paper Fig. 6: 3-NPU asymmetric topology expanded to t=3.
        let topo = fig6a();
        let mut ten = TimeExpandedNetwork::new(&topo, ByteSize::mb(1)).unwrap();
        for _ in 0..3 {
            ten.expand();
        }
        assert_eq!(ten.steps(), 3);
        assert_eq!(ten.num_links(), 4);
        // Each time span replicates the 4 physical links.
        assert_eq!(
            ten.endpoints(LinkId::new(3)),
            (NpuId::new(2), NpuId::new(0))
        );
        assert_eq!(
            format!("{ten}"),
            "TEN(3 NPUs x 3 steps, 0/12 edges matched)"
        );
    }

    #[test]
    fn occupancy_and_contention() {
        let topo = fig6a();
        let mut ten = TimeExpandedNetwork::new(&topo, ByteSize::mb(1)).unwrap();
        ten.expand();
        ten.occupy(0, LinkId::new(0), ChunkId::new(7)).unwrap();
        assert_eq!(ten.occupant(0, LinkId::new(0)), Some(ChunkId::new(7)));
        // One chunk per TEN edge (congestion-freedom).
        assert!(matches!(
            ten.occupy(0, LinkId::new(0), ChunkId::new(8)),
            Err(TenError::EdgeOccupied { step: 0, link: 0 })
        ));
        assert_eq!(ten.matched_edges(), 1);
        assert_eq!(ten.step_utilization(0), 0.25);
    }

    #[test]
    fn step_times() {
        let topo = fig6a();
        let ten = TimeExpandedNetwork::new(&topo, ByteSize::mb(1)).unwrap();
        // 0.5 us + 1 MB / 50 GB/s = 0.5 + 20 = 20.5 us per step.
        assert_eq!(ten.step_duration(), Time::from_micros(20.5));
        assert_eq!(ten.time_of_step(2), Time::from_micros(41.0));
    }

    #[test]
    fn heterogeneous_rejected() {
        let mut b = TopologyBuilder::new("hetero");
        b.npus(2);
        b.link(NpuId::new(0), NpuId::new(1), spec());
        b.link(
            NpuId::new(1),
            NpuId::new(0),
            LinkSpec::new(Time::from_micros(1.0), Bandwidth::gbps(70.0)),
        );
        let topo = b.build().unwrap();
        assert!(matches!(
            TimeExpandedNetwork::new(&topo, ByteSize::mb(1)),
            Err(TenError::HeterogeneousTopology)
        ));
    }

    #[test]
    fn fig7_ring_all_gather_representation() {
        // Paper Fig. 7: unidirectional 4-ring All-Gather occupies every TEN
        // edge over 3 steps. Build the algorithm by hand.
        use tacos_collective::algorithm::{AlgorithmBuilder, TransferKind};
        let ring = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let step = spec().cost(ByteSize::mb(1));
        let mut b = AlgorithmBuilder::new("ring-ag", 4, ByteSize::mb(1), ByteSize::mb(4));
        for s in 0..3u64 {
            for npu in 0..4u32 {
                // At step s, NPU i forwards chunk (i - s) mod 4 to i+1.
                let chunk = ChunkId::new((npu + 4 - s as u32) % 4);
                let src = NpuId::new(npu);
                let dst = NpuId::new((npu + 1) % 4);
                let link = ring
                    .best_link_between(src, dst, ByteSize::mb(1))
                    .unwrap()
                    .id();
                b.push_scheduled(
                    chunk,
                    src,
                    dst,
                    TransferKind::Copy,
                    link,
                    step * s,
                    step,
                    vec![],
                );
            }
        }
        let algo = b.build();
        let ten = TimeExpandedNetwork::represent(&ring, &algo).unwrap();
        assert_eq!(ten.steps(), 3);
        // All 4 links matched at every step: maximal utilization.
        assert_eq!(ten.matched_edges(), 12);
        for s in 0..3 {
            assert_eq!(ten.step_utilization(s), 1.0);
        }
    }

    #[test]
    fn represent_rejects_unscheduled() {
        use tacos_collective::algorithm::{AlgorithmBuilder, TransferKind};
        let ring = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let mut b = AlgorithmBuilder::new("dep", 4, ByteSize::mb(1), ByteSize::mb(4));
        b.push(
            ChunkId::new(0),
            NpuId::new(0),
            NpuId::new(1),
            TransferKind::Copy,
            vec![],
        );
        assert!(matches!(
            TimeExpandedNetwork::represent(&ring, &b.build()),
            Err(TenError::UnscheduledAlgorithm)
        ));
    }
}
