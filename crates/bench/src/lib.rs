//! # tacos-bench
//!
//! Experiment harness regenerating every table and figure of the TACOS
//! paper's evaluation (see DESIGN.md §5 for the full index). Each
//! experiment is a binary under `src/bin/`; shared setup lives here.

#![warn(missing_docs)]

pub mod experiments;
