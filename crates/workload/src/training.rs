//! End-to-end training-iteration evaluation (paper §VI-D, Figs. 20–21).
//!
//! For data-parallel models, gradient communication is exposed at the end
//! of each iteration (paper: "communication becomes exposed at the end of
//! each training iteration"), so
//! `iteration = forward + backward + exposed collectives`, where each
//! collective's time comes from the congestion-aware simulator running the
//! chosen algorithm (or from the theoretical ideal bound). The evaluator
//! also models two knobs the scenario engine's `[workload]` section
//! exposes: the parallelization's communication pattern
//! ([`Parallelism`]: pure data-parallel vs. hybrid with exposed
//! input-gradient collectives) and a compute-overlap fraction hiding part
//! of each collective behind compute.

use std::fmt;

use tacos_baselines::{BaselineAlgorithm, IdealBound};
use tacos_collective::{Collective, CollectivePattern};
use tacos_core::Synthesizer;
use tacos_sim::Simulator;
use tacos_topology::{ByteSize, Time, Topology};

use crate::error::WorkloadError;
use crate::mechanism::Mechanism;
use crate::models::Workload;

/// The parallelization's communication pattern: which gradient
/// collectives a training iteration exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Pure data parallelism: only the weight-gradient All-Reduce is
    /// exposed; any input-gradient volume the model defines is ignored.
    Data,
    /// Hybrid (data + model) parallelism: both the weight-gradient and
    /// the model's input-gradient collectives are exposed (models
    /// without an input-gradient volume contribute zero). This is the
    /// default — it exposes exactly what the model defines.
    #[default]
    Hybrid,
}

impl Parallelism {
    /// Parses a `[workload] parallelism` value.
    ///
    /// # Errors
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "data" => Ok(Parallelism::Data),
            "hybrid" => Ok(Parallelism::Hybrid),
            other => Err(format!(
                "unknown parallelism '{other}' (expected data | hybrid)"
            )),
        }
    }

    /// The `[workload] parallelism` name.
    pub fn name(self) -> &'static str {
        match self {
            Parallelism::Data => "data",
            Parallelism::Hybrid => "hybrid",
        }
    }
}

/// Per-iteration timing breakdown (the bars of paper Fig. 21).
///
/// `weight_grad_comm` / `input_grad_comm` are the *exposed* collective
/// times (after compute overlap); the `raw_*` fields keep the full
/// collective times so overlap accounting stays auditable
/// (`exposed <= raw` always holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingReport {
    /// Forward-pass compute.
    pub forward: Time,
    /// Backward-pass compute.
    pub backward: Time,
    /// Exposed weight-gradient collective time.
    pub weight_grad_comm: Time,
    /// Exposed input-gradient collective time (zero for pure DP).
    pub input_grad_comm: Time,
    /// Full (pre-overlap) weight-gradient collective time.
    pub raw_weight_grad: Time,
    /// Full (pre-overlap) input-gradient collective time.
    pub raw_input_grad: Time,
}

impl TrainingReport {
    /// Total iteration time.
    pub fn total(&self) -> Time {
        self.forward + self.backward + self.weight_grad_comm + self.input_grad_comm
    }

    /// Total exposed communication.
    pub fn comm(&self) -> Time {
        self.weight_grad_comm + self.input_grad_comm
    }

    /// Total raw (pre-overlap) communication.
    pub fn raw_comm(&self) -> Time {
        self.raw_weight_grad + self.raw_input_grad
    }

    /// Total compute.
    pub fn compute(&self) -> Time {
        self.forward + self.backward
    }
}

impl fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fwd {} + bwd {} + wg {} + ig {} = {}",
            self.forward,
            self.backward,
            self.weight_grad_comm,
            self.input_grad_comm,
            self.total()
        )
    }
}

/// Evaluates training iterations of a [`Workload`] on a topology under a
/// chosen communication [`Mechanism`].
///
/// ```no_run
/// use tacos_workload::{Mechanism, TrainingEvaluator, Workload};
/// use tacos_baselines::BaselineKind;
/// use tacos_topology::{Time, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = Topology::rfs_3d(2, 4, 8, Time::from_micros(0.5), [200.0, 100.0, 50.0])?;
/// let eval = TrainingEvaluator::new(&topo);
/// let report = eval.evaluate(&Workload::gnmt(), &Mechanism::Baseline(BaselineKind::Ring))?;
/// println!("iteration: {}", report.total());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrainingEvaluator<'a> {
    topo: &'a Topology,
    chunks: usize,
    parallelism: Parallelism,
    overlap: f64,
}

impl<'a> TrainingEvaluator<'a> {
    /// Creates an evaluator for `topo` with the default chunking factor
    /// (4, matching the paper's "TACOS (4 chunks)"), hybrid parallelism
    /// (expose exactly what the model defines), and no compute overlap.
    pub fn new(topo: &'a Topology) -> Self {
        TrainingEvaluator {
            topo,
            chunks: 4,
            parallelism: Parallelism::Hybrid,
            overlap: 0.0,
        }
    }

    /// Overrides the chunking factor used for synthesized collectives.
    #[must_use]
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }

    /// Sets the communication pattern of the parallelization.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the fraction of each gradient collective hidden under
    /// compute (clamped to `[0, 1]`; `0.0` = fully exposed, the paper's
    /// Figs. 20–21 assumption).
    #[must_use]
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        self.overlap = if overlap.is_finite() {
            overlap.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// Time for one All-Reduce of `size` under `mechanism`.
    ///
    /// # Errors
    /// Propagates synthesis / generation / simulation failures.
    pub fn all_reduce_time(
        &self,
        size: ByteSize,
        mechanism: &Mechanism,
    ) -> Result<Time, WorkloadError> {
        let n = self.topo.num_npus();
        match mechanism {
            Mechanism::Ideal => {
                let ideal = IdealBound::new(self.topo);
                Ok(ideal.collective_time(CollectivePattern::AllReduce, size))
            }
            Mechanism::Baseline(kind) => {
                let coll = Collective::all_reduce(n, size)?;
                let algo = BaselineAlgorithm::new(kind.clone()).generate(self.topo, &coll)?;
                let report = Simulator::new().simulate(self.topo, &algo)?;
                Ok(report.collective_time())
            }
            Mechanism::Tacos(m) => {
                let chunks = m.chunks.unwrap_or(self.chunks);
                let coll =
                    Collective::with_chunking(CollectivePattern::AllReduce, n, chunks, size)?;
                let result = Synthesizer::new(m.config.clone()).synthesize(self.topo, &coll)?;
                Ok(result.collective_time())
            }
        }
    }

    /// Evaluates one training iteration of `workload`.
    ///
    /// # Errors
    /// Propagates synthesis / generation / simulation failures.
    pub fn evaluate(
        &self,
        workload: &Workload,
        mechanism: &Mechanism,
    ) -> Result<TrainingReport, WorkloadError> {
        self.evaluate_with_times(workload, |size| self.all_reduce_time(size, mechanism))
    }

    /// Evaluates one training iteration with a caller-supplied
    /// collective-time resolver — the hook that lets the scenario runner
    /// route gradient collectives through its algorithm cache while the
    /// breakdown accounting (parallelism pattern, compute overlap) stays
    /// here, in one place.
    ///
    /// `all_reduce` is called once per exposed gradient collective with
    /// its payload size and must return the full (pre-overlap)
    /// collective time.
    ///
    /// # Errors
    /// Propagates the resolver's failures.
    pub fn evaluate_with_times(
        &self,
        workload: &Workload,
        mut all_reduce: impl FnMut(ByteSize) -> Result<Time, WorkloadError>,
    ) -> Result<TrainingReport, WorkloadError> {
        let raw_weight_grad = all_reduce(workload.weight_grad())?;
        let raw_input_grad = match (self.parallelism, workload.input_grad()) {
            (Parallelism::Hybrid, Some(size)) => all_reduce(size)?,
            _ => Time::ZERO,
        };
        Ok(TrainingReport {
            forward: workload.forward(),
            backward: workload.backward(),
            weight_grad_comm: self.expose(raw_weight_grad),
            input_grad_comm: self.expose(raw_input_grad),
            raw_weight_grad,
            raw_input_grad,
        })
    }

    /// The exposed share of a collective after compute overlap. Rounds
    /// down in picoseconds, so exposure never exceeds the raw time.
    fn expose(&self, raw: Time) -> Time {
        if self.overlap == 0.0 {
            return raw;
        }
        Time::from_ps((raw.as_ps() as f64 * (1.0 - self.overlap)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::SynthMechanism;
    use tacos_baselines::BaselineKind;
    use tacos_core::SynthesizerConfig;
    use tacos_topology::{Bandwidth, LinkSpec};

    fn small_torus() -> Topology {
        let spec = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
        Topology::torus_3d(2, 2, 2, spec).unwrap()
    }

    fn tacos(config: SynthesizerConfig) -> Mechanism {
        Mechanism::Tacos(SynthMechanism {
            config,
            chunks: None,
        })
    }

    #[test]
    fn ideal_is_fastest() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let w = Workload::resnet50();
        let ideal = eval.evaluate(&w, &Mechanism::Ideal).unwrap();
        let ring = eval
            .evaluate(&w, &Mechanism::Baseline(BaselineKind::Ring))
            .unwrap();
        let tacos = eval
            .evaluate(&w, &tacos(SynthesizerConfig::default()))
            .unwrap();
        assert!(ideal.comm() <= tacos.comm());
        assert!(ideal.comm() <= ring.comm());
        assert!(ideal.total() < ring.total());
    }

    #[test]
    fn tacos_beats_ring_on_torus() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let w = Workload::resnet50();
        let ring = eval
            .evaluate(&w, &Mechanism::Baseline(BaselineKind::Ring))
            .unwrap();
        let best = eval
            .evaluate(&w, &tacos(SynthesizerConfig::default().with_attempts(4)))
            .unwrap();
        assert!(
            best.comm() <= ring.comm(),
            "tacos {} vs ring {}",
            best.comm(),
            ring.comm()
        );
        // Compute is mechanism-independent.
        assert_eq!(best.compute(), ring.compute());
    }

    #[test]
    fn breakdown_accounts_input_grads() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let msft = eval
            .evaluate(&Workload::msft_1t(), &Mechanism::Ideal)
            .unwrap();
        assert!(msft.input_grad_comm > Time::ZERO);
        assert_eq!(
            msft.total(),
            msft.forward + msft.backward + msft.weight_grad_comm + msft.input_grad_comm
        );
        let resnet = eval
            .evaluate(&Workload::resnet50(), &Mechanism::Ideal)
            .unwrap();
        assert_eq!(resnet.input_grad_comm, Time::ZERO);
    }

    #[test]
    fn data_parallelism_drops_input_grad_collectives() {
        let topo = small_torus();
        let hybrid = TrainingEvaluator::new(&topo)
            .evaluate(&Workload::msft_1t(), &Mechanism::Ideal)
            .unwrap();
        let dp = TrainingEvaluator::new(&topo)
            .with_parallelism(Parallelism::Data)
            .evaluate(&Workload::msft_1t(), &Mechanism::Ideal)
            .unwrap();
        assert!(hybrid.input_grad_comm > Time::ZERO);
        assert_eq!(dp.input_grad_comm, Time::ZERO);
        assert_eq!(dp.raw_input_grad, Time::ZERO);
        // The weight-gradient collective is identical either way.
        assert_eq!(dp.weight_grad_comm, hybrid.weight_grad_comm);
        assert!(dp.total() < hybrid.total());
    }

    #[test]
    fn overlap_hides_communication_without_inventing_any() {
        let topo = small_torus();
        let w = Workload::msft_1t();
        let exposed = TrainingEvaluator::new(&topo)
            .evaluate(&w, &Mechanism::Ideal)
            .unwrap();
        let half = TrainingEvaluator::new(&topo)
            .with_overlap(0.5)
            .evaluate(&w, &Mechanism::Ideal)
            .unwrap();
        let full = TrainingEvaluator::new(&topo)
            .with_overlap(1.0)
            .evaluate(&w, &Mechanism::Ideal)
            .unwrap();
        // Raw collective times are overlap-independent.
        assert_eq!(half.raw_comm(), exposed.raw_comm());
        assert_eq!(full.raw_comm(), exposed.raw_comm());
        // Exposure shrinks monotonically and never exceeds raw.
        assert!(half.comm() < exposed.comm());
        assert_eq!(full.comm(), Time::ZERO);
        assert!(half.comm() <= half.raw_comm());
        assert_eq!(exposed.comm(), exposed.raw_comm());
        // Out-of-range values clamp instead of corrupting the breakdown.
        let clamped = TrainingEvaluator::new(&topo)
            .with_overlap(7.5)
            .evaluate(&w, &Mechanism::Ideal)
            .unwrap();
        assert_eq!(clamped.comm(), Time::ZERO);
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(Mechanism::Ideal.name(), "ideal");
        assert_eq!(Mechanism::Baseline(BaselineKind::Ring).name(), "ring");
        assert_eq!(tacos(SynthesizerConfig::default()).name(), "tacos");
    }

    #[test]
    fn evaluate_with_times_feeds_the_model_volumes() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let mut sizes = Vec::new();
        let report = eval
            .evaluate_with_times(&Workload::msft_1t(), |size| {
                sizes.push(size);
                Ok(Time::from_micros(10.0))
            })
            .unwrap();
        assert_eq!(
            sizes,
            [
                Workload::msft_1t().weight_grad(),
                Workload::msft_1t().input_grad().unwrap()
            ]
        );
        assert_eq!(report.weight_grad_comm, Time::from_micros(10.0));
        assert_eq!(report.raw_input_grad, Time::from_micros(10.0));
    }
}
