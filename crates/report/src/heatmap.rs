//! ASCII heat maps — the textual analogue of paper Fig. 1's link-load
//! matrices.

use std::fmt::Write as _;

/// Shade ramp from cold (light) to hot (dense).
const RAMP: &[char] = &['.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders an `n × n` matrix of optional values as an ASCII heat map.
///
/// `None` cells (no physical link) render as a blank; values are
/// normalized to the matrix maximum, mirroring the per-topology
/// normalization of paper Fig. 1. Zero-valued cells (idle links) render as
/// `0`.
///
/// ```
/// use tacos_report::heatmap;
/// let m = vec![
///     vec![None, Some(10.0)],
///     vec![Some(5.0), None],
/// ];
/// let s = heatmap(&m);
/// assert!(s.contains('@')); // the hottest cell
/// ```
pub fn heatmap(matrix: &[Vec<Option<f64>>]) -> String {
    let max = matrix
        .iter()
        .flatten()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b));
    let n = matrix.len();
    let mut out = String::new();
    // Column header.
    let _ = write!(out, "     ");
    for j in 0..n {
        let _ = write!(out, "{:>3}", j % 100);
    }
    let _ = writeln!(out);
    for (i, row) in matrix.iter().enumerate() {
        let _ = write!(out, "{i:>4} ");
        for cell in row {
            match cell {
                None => {
                    let _ = write!(out, "   ");
                }
                Some(v) => {
                    let c = shade(*v, max);
                    let _ = write!(out, "  {c}");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "scale: 0 {} max={max:.3}",
        RAMP.iter().collect::<String>()
    );
    out
}

fn shade(v: f64, max: f64) -> char {
    if v <= 0.0 || max <= 0.0 {
        return '0';
    }
    let idx = ((v / max) * (RAMP.len() as f64 - 1.0)).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Renders a sequence of `0..=1` values as a unicode sparkline — used for
/// the utilization-over-time plots of paper Figs. 16b and 18.
///
/// ```
/// use tacos_report::sparkline;
/// assert_eq!(sparkline(&[0.0, 0.5, 1.0]).chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let v = v.clamp(0.0, 1.0);
            let idx = (v * (BARS.len() as f64 - 1.0)).round() as usize;
            BARS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shades_scale() {
        assert_eq!(shade(0.0, 10.0), '0');
        assert_eq!(shade(10.0, 10.0), '@');
        assert_eq!(shade(5.0, 10.0), '+');
    }

    #[test]
    fn heatmap_marks_missing_links() {
        let m = vec![
            vec![None, Some(1.0), Some(0.0)],
            vec![Some(1.0), None, Some(0.5)],
            vec![Some(0.25), Some(0.75), None],
        ];
        let s = heatmap(&m);
        assert!(s.contains('@'));
        assert!(s.contains('0')); // idle link
        assert!(s.contains("max=1.000"));
    }

    #[test]
    fn sparkline_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
