//! DragonFly topology (Kim et al., ISCA '08; paper Table IV & §VI-B.1).
//!
//! A DragonFly is both **asymmetric** and **heterogeneous**: NPUs inside a
//! group are fully connected with fast *local* links, groups are joined by
//! slower *global* links, and only one NPU per group terminates any given
//! global link.

use crate::error::TopologyError;
use crate::ids::NpuId;
use crate::link::LinkSpec;
use crate::topology::{Topology, TopologyBuilder};

impl Topology {
    /// A DragonFly with `groups` groups of `per_group` NPUs.
    ///
    /// * Within a group: all-to-all `local` links.
    /// * Between groups `i < j`: one bidirectional `global` connection,
    ///   terminating at member `(j - 1) mod per_group` of group `i` and
    ///   member `i mod per_group` of group `j` (the classic balanced
    ///   assignment: with `per_group >= groups - 1` every member owns at
    ///   most one global link).
    ///
    /// The paper's instance (§VI-B.1) is `dragonfly(5, 4)` — written "4×5"
    /// there — with local 400 GB/s and global 200 GB/s.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if `groups < 2` or
    /// `per_group < 2`.
    pub fn dragonfly(
        groups: usize,
        per_group: usize,
        local: LinkSpec,
        global: LinkSpec,
    ) -> Result<Topology, TopologyError> {
        if groups < 2 || per_group < 2 {
            return Err(TopologyError::UnsupportedShape {
                reason: format!(
                    "dragonfly requires >=2 groups of >=2 NPUs, got {groups}x{per_group}"
                ),
            });
        }
        let n = groups * per_group;
        let mut b = TopologyBuilder::new(format!("DragonFly({per_group}x{groups})"));
        b.npus(n);
        let npu = |group: usize, member: usize| NpuId::new((group * per_group + member) as u32);
        // Local links: full mesh inside each group.
        for g in 0..groups {
            for i in 0..per_group {
                for j in 0..per_group {
                    if i != j {
                        b.link(npu(g, i), npu(g, j), local);
                    }
                }
            }
        }
        // Global links: one bidirectional connection per group pair.
        for i in 0..groups {
            for j in (i + 1)..groups {
                let a = npu(i, (j + per_group - 1) % per_group);
                let c = npu(j, i % per_group);
                b.bidi_link(a, c, global);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bandwidth, ByteSize, Time};

    fn paper_dragonfly() -> Topology {
        let alpha = Time::from_micros(0.5);
        Topology::dragonfly(
            5,
            4,
            LinkSpec::new(alpha, Bandwidth::gbps(400.0)),
            LinkSpec::new(alpha, Bandwidth::gbps(200.0)),
        )
        .unwrap()
    }

    #[test]
    fn paper_instance_shape() {
        let t = paper_dragonfly();
        assert_eq!(t.num_npus(), 20);
        // Local: 5 groups x 4x3 = 60. Global: C(5,2) pairs x 2 dirs = 20.
        assert_eq!(t.num_links(), 80);
        assert!(t.is_strongly_connected());
        assert!(!t.is_homogeneous());
        // With per_group == groups - 1 the global-link assignment is
        // perfectly balanced, so plain degree counting looks symmetric; the
        // *bandwidth* asymmetry (local vs global) is what matters.
        assert!(t.is_degree_symmetric());
    }

    #[test]
    fn local_links_are_fast() {
        let t = paper_dragonfly();
        let l = t
            .best_link_between(NpuId::new(0), NpuId::new(1), ByteSize::ZERO)
            .unwrap();
        assert_eq!(l.spec().bandwidth().as_gbps(), 400.0);
    }

    #[test]
    fn global_links_are_balanced() {
        let t = paper_dragonfly();
        // Each group terminates groups-1 = 4 global links over 4 members:
        // every member has exactly one global link (out-degree 3 local + 1).
        for npu in t.npus() {
            let degree = t.out_links(npu).len();
            assert_eq!(degree, 4, "{npu} degree {degree}");
        }
    }

    #[test]
    fn rejects_degenerate() {
        let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(400.0));
        assert!(Topology::dragonfly(1, 4, spec, spec).is_err());
        assert!(Topology::dragonfly(4, 1, spec, spec).is_err());
    }
}
