//! The serving daemon: accept loop, bounded worker pool, single-flight
//! deduplication, and warm-cache persistence.
//!
//! Threading model (std only — no async runtime):
//!
//! * one **accept thread** polls a non-blocking [`TcpListener`], enforces
//!   the connection cap (over-cap clients get one typed `rejected` line
//!   with a retry hint), and spawns a connection thread per client;
//! * **connection threads** parse request lines through a bounded line
//!   reader (oversized lines get a typed `error` and the connection is
//!   closed — a client cannot make the daemon buffer unbounded input),
//!   serve warm-cache hits inline, and otherwise wait on a
//!   [`Flight`](tacos_core::Flight) — one flight per cache key, so N
//!   concurrent identical requests cost exactly one synthesis. Idle
//!   connections past the timeout are closed with a typed `error`;
//! * a **bounded worker pool** executes synthesis jobs. Admission is a
//!   [`std::sync::mpsc::sync_channel`] of configurable depth: when it is
//!   full the leader's `try_send` fails and every waiter on that flight
//!   receives a typed `rejected` response instead of queueing unbounded
//!   work. A **supervisor thread** respawns workers killed by a
//!   synthesis panic (the panic fails only its own flight) and counts
//!   the restarts in `stats`;
//! * an optional **checkpoint thread** persists the warm cache every
//!   `--checkpoint-every` seconds through the same atomic
//!   temp+fsync+rename path as shutdown, so a SIGKILL loses at most one
//!   interval of entries.
//!
//! Every blocking wait is a timeout poll against the handle's stop flag,
//! so `SIGINT` (via [`tacos_core::shutdown`]) or a `shutdown` op drains
//! the daemon within ~100 ms and the warm cache is persisted on the way
//! out.
//!
//! All of the failure paths above are exercised deterministically by
//! [`crate::FaultPlan`] (the `--faults` flag) and asserted by
//! `tacos chaos`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tacos_baselines::{BaselineAlgorithm, IdealBound};
use tacos_collective::algorithm::CollectiveAlgorithm;
use tacos_collective::{export::to_compact, Collective};
use tacos_core::{
    AlgorithmCache, FlightEntry, InFlightRegistry, SynthesisScratch, Synthesizer,
    SynthesizerConfig, WarmCache, WarmEntry, WarmLimits,
};
use tacos_scenario::{parse_pattern, parse_size, parse_topology, Mechanism};
use tacos_sim::Simulator;
use tacos_topology::{Time, Topology};

use crate::faults::FaultPlan;
use crate::protocol::{OkBody, Op, Request, Response, StatsBody};

/// File name of the warm-cache snapshot inside `--cache-dir`.
pub const SNAPSHOT_FILE: &str = "warm.tacos-cache";

/// How long blocking loops sleep between stop-flag checks.
const POLL: Duration = Duration::from_millis(25);

/// Read timeout on client connections; bounds shutdown latency.
const READ_POLL: Duration = Duration::from_millis(100);

/// Per-connection line buffers shrink back to this capacity after each
/// request, so one large (but admissible) request doesn't pin its peak
/// allocation for the life of the connection.
const LINE_HIGH_WATER: usize = 16 * 1024;

/// Daemon configuration (the `tacos serve` flags).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; port 0 binds an ephemeral port (the bound
    /// address is reported by [`DaemonHandle::addr`]).
    pub addr: String,
    /// Synthesis worker threads.
    pub workers: usize,
    /// Admission-control queue depth: syntheses that may wait for a
    /// worker before new ones are rejected.
    pub queue_depth: usize,
    /// Directory for the warm-cache snapshot; `None` disables
    /// persistence.
    pub cache_dir: Option<PathBuf>,
    /// Default per-request deadline applied when a request does not
    /// carry its own `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Persist the warm cache at this interval (needs `cache_dir`);
    /// `None` checkpoints only on `checkpoint` ops and shutdown.
    pub checkpoint_every: Option<Duration>,
    /// Maximum request-line length; longer lines get a typed `error`
    /// and the connection is closed.
    pub max_line_bytes: usize,
    /// Close connections idle for this long; `None` never times out.
    pub idle_timeout: Option<Duration>,
    /// Maximum concurrent client connections; excess connections get
    /// one typed `rejected` line and are closed.
    pub max_connections: usize,
    /// The `retry_after_ms` hint attached to `rejected` responses.
    pub retry_after_ms: u64,
    /// Deterministic fault-injection schedule (the `--faults` flag);
    /// empty for a real daemon.
    pub faults: FaultPlan,
    /// Warm-cache residency bounds (`--warm-max-entries` /
    /// `--warm-max-bytes`); zero fields mean unbounded, the original
    /// behavior. Applied to snapshot reloads too.
    pub warm_limits: WarmLimits,
    /// Suppress stderr notices (cache load/persist messages).
    pub quiet: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:7440".into(),
            workers: 2,
            queue_depth: 32,
            cache_dir: None,
            default_deadline_ms: None,
            checkpoint_every: None,
            max_line_bytes: 1 << 20,
            idle_timeout: Some(Duration::from_secs(300)),
            max_connections: 256,
            retry_after_ms: 100,
            faults: FaultPlan::none(),
            warm_limits: WarmLimits::default(),
            quiet: false,
        }
    }
}

/// What a flight resolves to for everyone waiting on it.
#[derive(Debug, Clone)]
enum FlightOutcome {
    /// Synthesis finished; the entry is also in the warm cache now.
    Done {
        entry: Arc<WarmEntry>,
        synthesis_ms: f64,
    },
    /// Synthesis failed (or panicked).
    Failed(String),
    /// Admission control refused the job before it ran.
    Rejected(String),
}

/// One unit of work for the worker pool. `index` is the 1-based enqueue
/// sequence number — the coordinate [`FaultPlan`] faults are keyed by.
struct Job {
    index: u64,
    key: String,
    topo: Topology,
    collective: Collective,
    mechanism: Mechanism,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    synthesized: AtomicU64,
    deduplicated: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    errors: AtomicU64,
    worker_restarts: AtomicU64,
    checkpoints: AtomicU64,
}

/// Decrements a liveness counter when its scope ends — however the
/// scope ends, including a panic unwinding through it.
struct AliveGuard<'a>(&'a AtomicUsize);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

struct ServerState {
    warm: WarmCache,
    inflight: InFlightRegistry<FlightOutcome>,
    counters: Counters,
    stop: AtomicBool,
    /// `None` once shutdown has begun and the channel is closed.
    jobs: Mutex<Option<mpsc::SyncSender<Job>>>,
    /// Enqueue sequence for jobs (fault-plan coordinate).
    job_seq: AtomicU64,
    /// Accept sequence for connections (fault-plan coordinate).
    conn_seq: AtomicU64,
    /// Attempt sequence for checkpoints (fault-plan coordinate).
    checkpoint_seq: AtomicU64,
    /// Currently-running worker threads; the supervisor respawns up to
    /// `target_workers`.
    live_workers: AtomicUsize,
    target_workers: usize,
    /// Currently-open client connections (the `max_connections` gauge).
    live_conns: AtomicUsize,
    queue_depth: usize,
    cache_dir: Option<PathBuf>,
    default_deadline_ms: Option<u64>,
    max_line_bytes: usize,
    idle_timeout: Option<Duration>,
    max_connections: usize,
    retry_after_ms: u64,
    faults: FaultPlan,
    quiet: bool,
}

impl ServerState {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn notice(&self, msg: &str) {
        if !self.quiet {
            eprintln!("tacos serve: {msg}");
        }
    }

    fn snapshot_path(&self) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join(SNAPSHOT_FILE))
    }

    /// One checkpoint attempt: persists the warm cache atomically, or —
    /// when the fault plan aborts this attempt — tears the write halfway
    /// through the temp file, proving the snapshot at the final path
    /// survives untouched.
    fn persist(&self) -> io::Result<usize> {
        let Some(path) = self.snapshot_path() else {
            return Ok(0);
        };
        let attempt = self.checkpoint_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.faults.checkpoint_aborts(attempt) {
            self.warm.save_interrupted_to(&path)?;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected fault: checkpoint {attempt} aborted mid-write"),
            ));
        }
        let written = self.warm.save_to(path)?;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(written)
    }

    fn stats(&self) -> StatsBody {
        let c = &self.counters;
        StatsBody {
            requests: c.requests.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            synthesized: c.synthesized.load(Ordering::Relaxed),
            deduplicated: c.deduplicated.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            checkpoints: c.checkpoints.load(Ordering::Relaxed),
            warm_entries: self.warm.len() as u64,
            evictions: self.warm.evictions(),
            resident_bytes: self.warm.resident_bytes(),
        }
    }
}

/// A running daemon. Dropping the handle leaves the threads running;
/// call [`DaemonHandle::stop`] for a graceful, cache-persisting exit.
pub struct Daemon;

/// Handle to a spawned daemon: bound address, stop control, stats.
pub struct DaemonHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Removes `warm.tmp.*` checkpoint debris from `dir`, returning how
/// many files went away. Snapshot writes go to a uniquely named temp
/// file that is only renamed over [`SNAPSHOT_FILE`] on success — a
/// crash (or an injected `checkpoint-abort`) mid-write leaves the torn
/// temp behind forever. Sweeping at spawn time is safe: no workers are
/// running yet, the live snapshot never matches the temp prefix, and
/// any concurrent daemon on the same directory would be using fresh
/// temp names of its own (pid + sequence).
fn sweep_checkpoint_debris(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if name.starts_with("warm.tmp.") && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

impl Daemon {
    /// Binds the listen socket, loads any warm-cache snapshot, and
    /// starts the accept loop, worker pool, worker supervisor, and (when
    /// configured) the periodic checkpoint thread.
    ///
    /// A snapshot written by a different matcher version — or one that
    /// is not a snapshot at all — is reported as a notice and ignored
    /// (cold start). A *torn* snapshot with a valid header is salvaged:
    /// the valid prefix of entries is loaded and a notice says how many.
    pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let warm = match &config.cache_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let swept = sweep_checkpoint_debris(dir);
                if swept > 0 && !config.quiet {
                    eprintln!(
                        "tacos serve: removed {swept} stale checkpoint temp file(s) from {}",
                        dir.display()
                    );
                }
                let path = dir.join(SNAPSHOT_FILE);
                if path.exists() {
                    match WarmCache::load_from_with_limits(&path, config.warm_limits) {
                        Ok(report) => {
                            if !config.quiet {
                                if report.salvaged {
                                    eprintln!(
                                        "tacos serve: salvaged {} of {} cached algorithms from \
                                         torn snapshot {} ({})",
                                        report.entries_loaded,
                                        report.entries_expected,
                                        path.display(),
                                        report.detail.as_deref().unwrap_or("no detail"),
                                    );
                                } else {
                                    eprintln!(
                                        "tacos serve: loaded {} cached algorithms from {}{}",
                                        report.entries_loaded,
                                        path.display(),
                                        if report.entries_evicted > 0 {
                                            format!(
                                                " ({} trimmed to the cache caps)",
                                                report.entries_evicted
                                            )
                                        } else {
                                            String::new()
                                        }
                                    );
                                }
                            }
                            report.cache
                        }
                        Err(e) => {
                            if !config.quiet {
                                eprintln!("tacos serve: {e}");
                            }
                            WarmCache::with_limits(config.warm_limits)
                        }
                    }
                } else {
                    WarmCache::with_limits(config.warm_limits)
                }
            }
            None => WarmCache::with_limits(config.warm_limits),
        };

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let queue_depth = config.queue_depth.max(1);
        let target_workers = config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let state = Arc::new(ServerState {
            warm,
            inflight: InFlightRegistry::new(),
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            jobs: Mutex::new(Some(tx)),
            job_seq: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            checkpoint_seq: AtomicU64::new(0),
            live_workers: AtomicUsize::new(0),
            target_workers,
            live_conns: AtomicUsize::new(0),
            queue_depth,
            cache_dir: config.cache_dir.clone(),
            default_deadline_ms: config.default_deadline_ms,
            max_line_bytes: config.max_line_bytes.max(64),
            idle_timeout: config.idle_timeout,
            max_connections: config.max_connections.max(1),
            retry_after_ms: config.retry_after_ms,
            faults: config.faults.clone(),
            quiet: config.quiet,
        });

        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(
            (0..target_workers)
                .map(|_| spawn_worker(&state, &rx))
                .collect(),
        ));

        let supervisor = {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            let workers = Arc::clone(&workers);
            thread::spawn(move || supervisor_loop(&state, &rx, &workers))
        };

        let checkpointer = match (config.checkpoint_every, &config.cache_dir) {
            (Some(every), Some(_)) => {
                let state = Arc::clone(&state);
                Some(thread::spawn(move || checkpoint_loop(&state, every)))
            }
            (Some(_), None) => {
                if !config.quiet {
                    eprintln!("tacos serve: --checkpoint-every needs --cache-dir; ignoring");
                }
                None
            }
            _ => None,
        };

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let conns = Arc::clone(&conns);
            thread::spawn(move || accept_loop(&listener, &state, &conns))
        };

        Ok(DaemonHandle {
            state,
            addr,
            accept: Some(accept),
            supervisor: Some(supervisor),
            checkpointer,
            workers,
            conns,
        })
    }
}

impl DaemonHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a stop has been requested (a client `shutdown` op or a
    /// previous trigger); the owner should then call
    /// [`DaemonHandle::stop`].
    pub fn stop_requested(&self) -> bool {
        self.state.stopping()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StatsBody {
        self.state.stats()
    }

    /// Stops the daemon: joins the accept loop, supervisor, workers,
    /// checkpointer, and connection threads, then persists the warm
    /// cache. Returns the number of entries written (0 without a cache
    /// directory).
    pub fn stop(mut self) -> io::Result<usize> {
        self.state.stop.store(true, Ordering::Relaxed);
        // Closing the channel lets idle workers exit immediately.
        self.state
            .jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The supervisor first, so nothing respawns while we drain.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for w in workers {
            let _ = w.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for c in conns {
            let _ = c.join();
        }
        let persisted = self.state.persist()?;
        if persisted > 0 {
            self.state
                .notice(&format!("persisted {persisted} cached algorithms"));
        }
        Ok(persisted)
    }
}

fn spawn_worker(state: &Arc<ServerState>, rx: &Arc<Mutex<mpsc::Receiver<Job>>>) -> JoinHandle<()> {
    // Counted before the thread exists so the supervisor never sees a
    // just-spawned worker as missing.
    state.live_workers.fetch_add(1, Ordering::Relaxed);
    let state = Arc::clone(state);
    let rx = Arc::clone(rx);
    thread::spawn(move || {
        let _alive = AliveGuard(&state.live_workers);
        worker_loop(&state, &rx);
    })
}

/// Keeps the worker pool at full strength: a synthesis panic kills its
/// worker thread (deliberately — the replacement gets pristine scratch
/// state), and this loop respawns it and counts the restart.
fn supervisor_loop(
    state: &Arc<ServerState>,
    rx: &Arc<Mutex<mpsc::Receiver<Job>>>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if state.stopping() {
            return;
        }
        let live = state.live_workers.load(Ordering::Relaxed);
        if live < state.target_workers {
            let missing = state.target_workers - live;
            state
                .counters
                .worker_restarts
                .fetch_add(missing as u64, Ordering::Relaxed);
            state.notice(&format!(
                "worker died; respawning {missing} (pool target {})",
                state.target_workers
            ));
            let mut guard = workers.lock().unwrap_or_else(PoisonError::into_inner);
            // Reap the corpses so the handle list tracks live threads.
            let mut i = 0;
            while i < guard.len() {
                if guard.get(i).is_some_and(|w| w.is_finished()) {
                    let _ = guard.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            for _ in 0..missing {
                guard.push(spawn_worker(state, rx));
            }
        }
        thread::sleep(POLL);
    }
}

/// Persists the warm cache every `every`, sleeping in stop-checked
/// slices so shutdown is never blocked on a checkpoint interval.
fn checkpoint_loop(state: &Arc<ServerState>, every: Duration) {
    loop {
        let deadline = Instant::now() + every;
        loop {
            if state.stopping() {
                return;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            thread::sleep(left.min(POLL));
        }
        match state.persist() {
            Ok(written) => {
                if written > 0 {
                    state.notice(&format!("checkpoint: persisted {written} entries"));
                }
            }
            Err(e) => state.notice(&format!("checkpoint failed: {e}")),
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if state.stopping() {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let conn_index = state.conn_seq.fetch_add(1, Ordering::Relaxed) + 1;
                if state.live_conns.load(Ordering::Relaxed) >= state.max_connections {
                    state.counters.requests.fetch_add(1, Ordering::Relaxed);
                    state.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let response = Response::Rejected(
                        None,
                        state.retry_after_ms,
                        format!(
                            "connection limit reached ({} connections); retry later",
                            state.max_connections
                        ),
                    );
                    let _ = stream.write_all(response.line().as_bytes());
                    let _ = stream.flush();
                    continue; // dropping the stream closes it
                }
                state.live_conns.fetch_add(1, Ordering::Relaxed);
                let state = Arc::clone(state);
                let handle = thread::spawn(move || connection_loop(stream, &state, conn_index));
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(e) => {
                state.notice(&format!("accept error: {e}"));
                thread::sleep(POLL);
            }
        }
    }
}

/// What one bounded-line read attempt produced.
enum ReadEvent {
    /// A complete line (without its newline) is in the buffer.
    Line,
    /// The peer closed the connection.
    Eof,
    /// The read timed out with no complete line; check stop/idle state.
    Idle,
    /// The line exceeded the cap before its newline arrived.
    TooLong,
    /// Unrecoverable I/O error.
    Failed,
}

/// Reads toward the next newline into `buf`, never holding more than
/// `max` bytes — the fix for the unbounded `read_line` the daemon
/// originally used, where one malicious line could grow the buffer
/// without limit.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> ReadEvent {
    let (found_newline, consumed) = {
        let available = match reader.fill_buf() {
            Ok([]) => {
                // EOF; a final unterminated line still gets served.
                return if buf.is_empty() {
                    ReadEvent::Eof
                } else {
                    ReadEvent::Line
                };
            }
            Ok(bytes) => bytes,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return ReadEvent::Idle;
            }
            Err(_) => return ReadEvent::Failed,
        };
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&available[..pos]); // lint: allow(panic, "pos came from position() on this slice")
                (true, pos + 1)
            }
            None => {
                buf.extend_from_slice(available);
                (false, available.len())
            }
        }
    };
    reader.consume(consumed);
    if buf.len() > max {
        return ReadEvent::TooLong;
    }
    if found_newline {
        ReadEvent::Line
    } else {
        // Partial data: return to the caller instead of looping so the
        // idle clock gets checked — a client trickling bytes forever
        // must not starve the timeout. The caller re-enters with the
        // same buffer, so nothing is lost; buffered bytes make the next
        // fill_buf return immediately.
        ReadEvent::Idle
    }
}

/// After rejecting an oversized line, discard whatever the client is
/// still sending (bounded by time and bytes) so the typed `error`
/// response reaches it before the close — an immediate close while the
/// peer is mid-send turns into a RST that discards our response.
fn drain_rejected_line(reader: &mut BufReader<TcpStream>) {
    const DRAIN_BUDGET_BYTES: usize = 64 << 20;
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut drained = 0usize;
    while Instant::now() < deadline && drained < DRAIN_BUDGET_BYTES {
        let consumed = match reader.fill_buf() {
            Ok([]) => return,
            Ok(bytes) => bytes.len(),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        reader.consume(consumed);
        drained += consumed;
    }
}

fn connection_loop(stream: TcpStream, state: &Arc<ServerState>, conn_index: u64) {
    let _alive = AliveGuard(&state.live_conns);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let response_delay = state.faults.conn_delay(conn_index);
    let mut reader = BufReader::new(stream);
    // One reusable buffer per connection, shrunk back to a high-water
    // mark after each request so a single large request doesn't pin its
    // peak allocation for the connection's lifetime.
    let mut buf: Vec<u8> = Vec::new();
    let mut last_request = Instant::now();
    loop {
        match read_bounded_line(&mut reader, &mut buf, state.max_line_bytes) {
            ReadEvent::Line => {
                {
                    let line = String::from_utf8_lossy(&buf);
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        let response = handle_line(state, trimmed);
                        if let Some(delay) = response_delay {
                            thread::sleep(delay);
                        }
                        if writer.write_all(response.line().as_bytes()).is_err()
                            || writer.flush().is_err()
                        {
                            return;
                        }
                    }
                }
                buf.clear();
                if buf.capacity() > LINE_HIGH_WATER {
                    buf.shrink_to(LINE_HIGH_WATER);
                }
                last_request = Instant::now();
            }
            ReadEvent::Idle => {
                if state.stopping() {
                    return;
                }
                // Partial lines deliberately do not reset the clock: a
                // client trickling bytes forever is exactly what the
                // timeout is for.
                if let Some(idle) = state.idle_timeout {
                    if last_request.elapsed() >= idle {
                        state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        let response = Response::Error(
                            None,
                            format!("connection idle for {} s; closing", idle.as_secs().max(1)),
                        );
                        let _ = writer.write_all(response.line().as_bytes());
                        let _ = writer.flush();
                        return;
                    }
                }
            }
            ReadEvent::TooLong => {
                state.counters.requests.fetch_add(1, Ordering::Relaxed);
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                let response = Response::Error(
                    None,
                    format!(
                        "request line exceeds {} bytes; closing connection",
                        state.max_line_bytes
                    ),
                );
                if writer.write_all(response.line().as_bytes()).is_ok() && writer.flush().is_ok() {
                    drain_rejected_line(&mut reader);
                }
                return;
            }
            ReadEvent::Eof | ReadEvent::Failed => return,
        }
    }
}

fn handle_line(state: &Arc<ServerState>, line: &str) -> Response {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Response::Error(None, e);
        }
    };
    match req.op {
        Op::Ping => Response::Pong(req.id),
        Op::Stats => Response::Stats(req.id, state.stats()),
        Op::Checkpoint => match state.snapshot_path() {
            Some(_) => match state.persist() {
                Ok(n) => Response::Checkpointed(req.id, n as u64),
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error(req.id, format!("checkpoint failed: {e}"))
                }
            },
            None => {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(req.id, "daemon started without --cache-dir".into())
            }
        },
        Op::Shutdown => {
            state.stop.store(true, Ordering::Relaxed);
            Response::ShuttingDown(req.id)
        }
        Op::Synthesize => match synthesize(state, &req) {
            Ok(response) => response,
            Err(e) => {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(req.id, e)
            }
        },
    }
}

fn synthesize(state: &Arc<ServerState>, req: &Request) -> Result<Response, String> {
    let topo = parse_topology(&req.topology, req.link.to_spec())?;
    let pattern = parse_pattern(&req.collective, topo.num_npus())?;
    let size = parse_size(&req.size)?;

    let mut config = SynthesizerConfig::default();
    if let Some(seed) = req.seed {
        config = config.with_seed(seed);
    }
    if let Some(attempts) = req.attempts {
        config = config.with_attempts(attempts);
    }
    if let Some(on) = req.prefer_cheap_links {
        config = config.with_prefer_cheap_links(on);
    }
    let mechanism = Mechanism::parse(&req.mechanism, &config)?;

    if mechanism == Mechanism::Ideal {
        // The theoretical bound is a closed-form computation: answer
        // inline, no worker, no cache.
        let ideal = IdealBound::new(&topo);
        let time = ideal.collective_time(pattern, size);
        return Ok(Response::Ok(
            req.id,
            ok_body(
                req,
                &topo,
                size.as_u64(),
                time,
                0,
                "ideal",
                None,
                false,
                false,
                0.0,
            ),
        ));
    }

    let chunks = match &mechanism {
        Mechanism::Tacos(m) => m.chunks.unwrap_or(req.chunks),
        _ => req.chunks,
    };
    let collective = Collective::with_chunking(pattern, topo.num_npus(), chunks, size)
        .map_err(|e| e.to_string())?;
    let key = match &mechanism {
        Mechanism::Tacos(m) => {
            let synth = Synthesizer::new(m.config.clone());
            AlgorithmCache::key_with_tag("tacos", &synth, &topo, &collective)
        }
        Mechanism::Baseline(kind) => AlgorithmCache::key_for_generator(
            &req.mechanism,
            &topo,
            &collective,
            kind.seed().unwrap_or(0),
        ),
        Mechanism::Ideal => unreachable!("handled above"), // lint: allow(panic, "Ideal returned early above; a new variant is a compile error first")
    };

    if let Some(entry) = state.warm.get(&key) {
        state.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Response::Ok(
            req.id,
            entry_body(
                req,
                &topo,
                size.as_u64(),
                &entry,
                mechanism.name(),
                true,
                false,
                0.0,
            ),
        ));
    }

    let mut deduplicated = false;
    let flight = match state.inflight.begin(&key) {
        FlightEntry::Leader(flight) => {
            let job = Job {
                index: state.job_seq.fetch_add(1, Ordering::Relaxed) + 1,
                key: key.clone(),
                topo: topo.clone(),
                collective,
                mechanism: mechanism.clone(),
            };
            enum Admission {
                Accepted,
                QueueFull,
                Closed,
            }
            let send = state
                .jobs
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .as_ref()
                .map(|tx| match tx.try_send(job) {
                    Ok(()) => Admission::Accepted,
                    Err(mpsc::TrySendError::Full(_)) => Admission::QueueFull,
                    Err(mpsc::TrySendError::Disconnected(_)) => Admission::Closed,
                });
            match send {
                Some(Admission::Accepted) => {}
                Some(Admission::QueueFull) => state.inflight.complete(
                    &key,
                    FlightOutcome::Rejected(format!(
                        "admission queue full ({} waiting syntheses); retry later",
                        state.queue_depth
                    )),
                ),
                Some(Admission::Closed) | None => state.inflight.complete(
                    &key,
                    FlightOutcome::Failed("daemon is shutting down".into()),
                ),
            }
            flight
        }
        FlightEntry::Follower(flight) => {
            deduplicated = true;
            flight
        }
    };

    let outcome = match req.deadline_ms.or(state.default_deadline_ms) {
        Some(ms) => {
            match flight.wait_timeout(Duration::from_millis(ms)) {
                Some(outcome) => outcome,
                None => {
                    state
                        .counters
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(Response::Deadline(
                    req.id,
                    format!("deadline of {ms} ms expired; synthesis continues and will warm the cache"),
                ));
                }
            }
        }
        None => loop {
            if let Some(outcome) = flight.wait_timeout(READ_POLL) {
                break outcome;
            }
            if state.stopping() {
                return Err("daemon is shutting down".into());
            }
        },
    };

    match outcome {
        FlightOutcome::Done {
            entry,
            synthesis_ms,
        } => {
            if deduplicated {
                state.counters.deduplicated.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::Ok(
                req.id,
                entry_body(
                    req,
                    &topo,
                    size.as_u64(),
                    &entry,
                    mechanism.name(),
                    false,
                    deduplicated,
                    synthesis_ms,
                ),
            ))
        }
        FlightOutcome::Failed(msg) => Err(msg),
        FlightOutcome::Rejected(msg) => {
            state.counters.rejected.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Rejected(req.id, state.retry_after_ms, msg))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn entry_body(
    req: &Request,
    topo: &Topology,
    size_bytes: u64,
    entry: &WarmEntry,
    algorithm: &str,
    cache_hit: bool,
    deduplicated: bool,
    synthesis_ms: f64,
) -> OkBody {
    let compact = req.include_algorithm.then(|| to_compact(&entry.algo));
    ok_body(
        req,
        topo,
        size_bytes,
        entry.time,
        entry.algo.len() as u64,
        algorithm,
        compact,
        cache_hit,
        deduplicated,
        synthesis_ms,
    )
}

#[allow(clippy::too_many_arguments)]
fn ok_body(
    _req: &Request,
    topo: &Topology,
    size_bytes: u64,
    time: Time,
    transfers: u64,
    algorithm: &str,
    algorithm_compact: Option<String>,
    cache_hit: bool,
    deduplicated: bool,
    synthesis_ms: f64,
) -> OkBody {
    let bandwidth_gbps = if time.is_zero() {
        f64::INFINITY
    } else {
        size_bytes as f64 / time.as_secs_f64() / 1e9
    };
    OkBody {
        cache_hit,
        deduplicated,
        collective_time_ps: time.as_ps(),
        bandwidth_gbps,
        synthesis_ms,
        transfers,
        num_npus: topo.num_npus() as u64,
        algorithm: algorithm.into(),
        algorithm_compact,
    }
}

fn worker_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<mpsc::Receiver<Job>>>) {
    let mut scratch = SynthesisScratch::new();
    loop {
        let job = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.try_recv()
        };
        match job {
            Ok(job) => {
                if run_job(state, job, &mut scratch) {
                    // The job panicked: this thread dies so its
                    // replacement starts with pristine scratch state;
                    // the supervisor respawns and counts it.
                    return;
                }
            }
            Err(mpsc::TryRecvError::Empty) => {
                if state.stopping() {
                    return;
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(mpsc::TryRecvError::Disconnected) => return,
        }
    }
}

/// Runs one synthesis job; returns `true` when the job panicked and the
/// worker thread should die (the flight is already completed either way
/// — a panic fails only its own flight, never a waiter).
fn run_job(state: &Arc<ServerState>, job: Job, scratch: &mut SynthesisScratch) -> bool {
    let Job {
        index,
        key,
        topo,
        collective,
        mechanism,
    } = job;
    let (stall, injected_panic) = state.faults.job_fault(index);
    if let Some(stall) = stall {
        // Stop-checked slices so an injected stall cannot hang shutdown.
        let deadline = Instant::now() + stall;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || state.stopping() {
                break;
            }
            thread::sleep(left.min(POLL));
        }
    }
    let started = Instant::now();
    let generated = catch_unwind(AssertUnwindSafe(|| {
        if injected_panic {
            panic!("injected fault: synthesis panic on job {index}"); // lint: allow(panic, "deliberate chaos fault, caught by the catch_unwind below")
        }
        generate(&topo, &collective, &mechanism, scratch)
    }));
    let synthesis_ms = started.elapsed().as_secs_f64() * 1e3;
    match generated {
        Ok(Ok((algo, time))) => {
            let entry = state.warm.insert(key.clone(), WarmEntry { time, algo });
            state.counters.synthesized.fetch_add(1, Ordering::Relaxed);
            state.inflight.complete(
                &key,
                FlightOutcome::Done {
                    entry,
                    synthesis_ms,
                },
            );
            false
        }
        Ok(Err(msg)) => {
            state.inflight.complete(&key, FlightOutcome::Failed(msg));
            false
        }
        Err(_) => {
            state.inflight.complete(
                &key,
                FlightOutcome::Failed(
                    "synthesis panicked; the worker thread was restarted — see daemon stderr"
                        .into(),
                ),
            );
            true
        }
    }
}

/// Generates the algorithm and its completion time — synthesized
/// schedules carry a planned time; baseline schedules are simulated,
/// matching the scenario runner's semantics.
fn generate(
    topo: &Topology,
    collective: &Collective,
    mechanism: &Mechanism,
    scratch: &mut SynthesisScratch,
) -> Result<(CollectiveAlgorithm, Time), String> {
    let algo = match mechanism {
        Mechanism::Tacos(m) => Synthesizer::new(m.config.clone())
            .synthesize_with(topo, collective, scratch)
            .map_err(|e| e.to_string())?
            .into_algorithm(),
        Mechanism::Baseline(kind) => BaselineAlgorithm::new(kind.clone())
            .generate(topo, collective)
            .map_err(|e| e.to_string())?,
        Mechanism::Ideal => return Err("ideal mechanism is answered inline".into()),
    };
    let time = match algo.planned_time() {
        Some(time) => time,
        None => Simulator::new()
            .simulate(topo, &algo)
            .map_err(|e| e.to_string())?
            .collective_time(),
    };
    Ok((algo, time))
}
