//! Error type for TEN construction and occupancy.

use std::error::Error;
use std::fmt;

/// Errors produced while building or mutating a time-expanded network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenError {
    /// A TEN needs at least one physical link.
    NoLinks,
    /// The materialized uniform-step TEN requires homogeneous link costs;
    /// heterogeneous topologies use the event-driven expanding TEN.
    HeterogeneousTopology,
    /// The TEN edge already carries a chunk (congestion-freedom: one chunk
    /// per link per time span, paper §IV-D).
    EdgeOccupied {
        /// Time-span index.
        step: usize,
        /// Link index.
        link: usize,
    },
    /// An algorithm without a full schedule cannot be projected onto a TEN.
    UnscheduledAlgorithm,
    /// A scheduled transfer does not align with the uniform TEN step grid.
    MisalignedSchedule,
}

impl fmt::Display for TenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenError::NoLinks => write!(f, "topology has no links to expand"),
            TenError::HeterogeneousTopology => write!(
                f,
                "materialized TEN requires homogeneous link costs; use ExpandingTen"
            ),
            TenError::EdgeOccupied { step, link } => {
                write!(
                    f,
                    "TEN edge (step {step}, link {link}) already carries a chunk"
                )
            }
            TenError::UnscheduledAlgorithm => {
                write!(
                    f,
                    "algorithm transfers lack schedules; cannot project onto TEN"
                )
            }
            TenError::MisalignedSchedule => {
                write!(
                    f,
                    "scheduled transfer does not align with the TEN step grid"
                )
            }
        }
    }
}

impl Error for TenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TenError::NoLinks.to_string().contains("no links"));
        assert!(TenError::HeterogeneousTopology
            .to_string()
            .contains("ExpandingTen"));
        assert!(TenError::EdgeOccupied { step: 1, link: 2 }
            .to_string()
            .contains("step 1, link 2"));
        assert!(TenError::UnscheduledAlgorithm
            .to_string()
            .contains("lack schedules"));
        assert!(TenError::MisalignedSchedule.to_string().contains("align"));
    }
}
