//! **Fig. 16** — TACOS vs. BlueConnect and Themis on a symmetric 3D Torus
//! and the asymmetric 3D Hypercube grid (α = 0.7 µs, 1/β = 25 GB/s),
//! across collective sizes 64 MB – 2 GB, plus the link-utilization
//! timeline during a 1 GB All-Reduce.
//!
//! Expected shape: on the torus all contenders are close (paper: TACOS
//! 95.9% of ideal, Themis-64 similar for large sizes but poor for small);
//! on the grid Themis collapses (~49% of ideal) because it cannot re-route
//! around the missing wraparound links, while TACOS stays ~98%.

use tacos_baselines::BaselineKind;
use tacos_bench::experiments::{run_baseline, run_ideal, run_tacos, spec, write_results_csv};
use tacos_collective::Collective;
use tacos_report::{fmt_f64, sparkline, Table};
use tacos_topology::{ByteSize, Topology};

fn main() {
    let link = spec(0.7, 25.0);
    let torus = Topology::torus_3d(4, 4, 4, link).unwrap();
    let grid = Topology::hypercube_3d(4, 4, 4, link).unwrap();
    let sizes = [
        ("64MB", ByteSize::mb(64)),
        ("0.5GB", ByteSize::mb(500)),
        ("1GB", ByteSize::gb(1)),
        ("2GB", ByteSize::gb(2)),
    ];

    println!("=== Fig. 16(a): AR bandwidth vs BlueConnect/Themis (64 NPUs) ===\n");
    let mut table = Table::new(vec![
        "topology",
        "size",
        "BC-4 (GB/s)",
        "Themis-4",
        "Themis-64",
        "TACOS-4",
        "Ideal",
    ]);
    let mut csv = vec![vec![
        "topology".into(),
        "size".into(),
        "algorithm".to_string(),
        "bandwidth_gbps".into(),
    ]];
    for topo in [&torus, &grid] {
        for (label, size) in sizes {
            let coll = Collective::all_reduce(64, size).unwrap();
            let chunked = tacos_bench::experiments::all_reduce_chunked(64, size, 4);
            let runs = vec![
                run_baseline(topo, &coll, BaselineKind::BlueConnect { chunks: 4 }),
                run_baseline(topo, &coll, BaselineKind::Themis { chunks: 4 }),
                run_baseline(topo, &coll, BaselineKind::Themis { chunks: 64 }),
                run_tacos(topo, &chunked, 8, 42),
                run_ideal(topo, &coll),
            ];
            table.row(vec![
                topo.name().into(),
                label.into(),
                fmt_f64(runs[0].bandwidth_gbps),
                fmt_f64(runs[1].bandwidth_gbps),
                fmt_f64(runs[2].bandwidth_gbps),
                fmt_f64(runs[3].bandwidth_gbps),
                fmt_f64(runs[4].bandwidth_gbps),
            ]);
            for m in &runs {
                csv.push(vec![
                    topo.name().into(),
                    label.into(),
                    m.name.clone(),
                    format!("{}", m.bandwidth_gbps),
                ]);
            }
        }
    }
    print!("{table}");

    println!("\n=== Fig. 16(b): link utilization over time (1 GB AR) ===\n");
    for topo in [&torus, &grid] {
        let coll = Collective::all_reduce(64, ByteSize::gb(1)).unwrap();
        let chunked = tacos_bench::experiments::all_reduce_chunked(64, ByteSize::gb(1), 4);
        let tacos = run_tacos(topo, &chunked, 8, 42);
        let themis = run_baseline(topo, &coll, BaselineKind::Themis { chunks: 64 });
        for m in [&tacos, &themis] {
            let tl = m.report.as_ref().unwrap().utilization_timeline(60);
            println!(
                "{:<22} {:<8} |{}| avg {:.1}%",
                topo.name(),
                m.name,
                sparkline(&tl),
                m.report.as_ref().unwrap().average_utilization() * 100.0
            );
        }
    }
    write_results_csv("fig16_themis.csv", &csv);
}
