//! The Direct collective algorithm (paper Fig. 5b): every NPU exchanges
//! directly with every other NPU in a single conceptual step.
//!
//! Optimal on FullyConnected fabrics (and for latency-bound tiny
//! collectives); on sparse topologies the all-to-all traffic is routed over
//! multi-hop shortest paths and collapses under contention — the paper's
//! Fig. 2a shows Ring beating Direct by 16.7× on a physical ring.

use tacos_collective::algorithm::{
    AlgorithmBuilder, CollectiveAlgorithm, TransferId, TransferKind,
};
use tacos_collective::{ChunkId, Collective, CollectivePattern};
use tacos_topology::{NpuId, Topology};

use crate::error::BaselineError;

/// Generates the Direct algorithm for All-Gather, Reduce-Scatter, or
/// All-Reduce.
///
/// * All-Gather: NPU `i` sends its shard straight to every peer.
/// * Reduce-Scatter: NPU `i` sends segment `j` of its buffer straight to
///   NPU `j`.
/// * All-Reduce: Reduce-Scatter then All-Gather, with each NPU's gather
///   sends gated on its reduction completing.
///
/// # Errors
/// [`BaselineError::UnsupportedPattern`] for rooted patterns.
pub fn direct(
    topo: &Topology,
    collective: &Collective,
) -> Result<CollectiveAlgorithm, BaselineError> {
    if topo.num_npus() != collective.num_npus() {
        return Err(BaselineError::NpuCountMismatch {
            topology: topo.num_npus(),
            collective: collective.num_npus(),
        });
    }
    let n = collective.num_npus();
    let chunk_size = match collective.pattern() {
        // All-to-All shards are per-(src,dst) and may be sub-chunked.
        CollectivePattern::AllToAll => collective.chunk_size(),
        _ => collective.total_size().split(n as u64),
    };
    let mut b = AlgorithmBuilder::new("direct", n, chunk_size, collective.total_size());
    match collective.pattern() {
        CollectivePattern::AllGather => {
            scatter_phase(&mut b, n, TransferKind::Copy, true, &[]);
        }
        CollectivePattern::ReduceScatter => {
            scatter_phase(&mut b, n, TransferKind::Reduce, false, &[]);
        }
        CollectivePattern::AllReduce => {
            let recvs = scatter_phase(&mut b, n, TransferKind::Reduce, false, &[]);
            scatter_phase(&mut b, n, TransferKind::Copy, true, &recvs);
        }
        CollectivePattern::AllToAll => {
            // One direct message per ordered pair carrying that pair's
            // shard (chunk id (i·n + j)·k encoded with count k).
            let k = collective.chunks_per_npu() as u32;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        b.push_counted(
                            ChunkId::new(((i * n + j) as u32) * k),
                            k,
                            NpuId::new(i as u32),
                            NpuId::new(j as u32),
                            TransferKind::Copy,
                            vec![],
                        );
                    }
                }
            }
        }
        CollectivePattern::Broadcast { .. }
        | CollectivePattern::Reduce { .. }
        | CollectivePattern::Gather { .. }
        | CollectivePattern::Scatter { .. } => {
            return Err(BaselineError::UnsupportedPattern {
                baseline: "direct",
                pattern: collective.pattern().short_name(),
            });
        }
    }
    Ok(b.build())
}

/// One direct phase. If `own_segment` is true each NPU distributes its own
/// segment (All-Gather style); otherwise NPU `i` sends segment `j` to NPU
/// `j` (Reduce-Scatter style). `entry_deps[i]` gates NPU `i`'s sends.
/// Returns, per NPU, the transfers received (for the next phase's gates).
fn scatter_phase(
    b: &mut AlgorithmBuilder,
    n: usize,
    kind: TransferKind,
    own_segment: bool,
    entry_deps: &[Vec<TransferId>],
) -> Vec<Vec<TransferId>> {
    let mut received: Vec<Vec<TransferId>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, recv) in received.iter_mut().enumerate() {
            if i == j {
                continue;
            }
            let seg = if own_segment { i } else { j };
            let deps = entry_deps.get(i).cloned().unwrap_or_default();
            let id = b.push(
                ChunkId::new(seg as u32),
                NpuId::new(i as u32),
                NpuId::new(j as u32),
                kind,
                deps,
            );
            recv.push(id);
        }
    }
    received
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_sim::Simulator;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, RingOrientation, Time};

    fn spec() -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
    }

    #[test]
    fn all_gather_on_fully_connected_is_one_step() {
        let topo = Topology::fully_connected(8, spec()).unwrap();
        let coll = Collective::all_gather(8, ByteSize::mb(8)).unwrap();
        let algo = direct(&topo, &coll).unwrap();
        assert_eq!(algo.len(), 56);
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        assert_eq!(report.collective_time(), spec().cost(ByteSize::mb(1)));
    }

    #[test]
    fn all_reduce_on_fully_connected_is_two_steps() {
        let topo = Topology::fully_connected(8, spec()).unwrap();
        let coll = Collective::all_reduce(8, ByteSize::mb(8)).unwrap();
        let algo = direct(&topo, &coll).unwrap();
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        assert_eq!(report.collective_time(), spec().cost(ByteSize::mb(1)) * 2);
        // Perfectly balanced: every link carries exactly 2 MB.
        let bytes = report.link_bytes();
        assert!(bytes.iter().all(|&b| b == 2_000_000));
    }

    #[test]
    fn direct_on_ring_oversubscribes() {
        // Paper Fig. 2a: Direct on a Ring is ~16x worse than Ring (at 64
        // NPUs; the gap grows with the average hop distance, so 16 NPUs
        // already shows several x).
        let topo = Topology::ring(16, spec(), RingOrientation::Bidirectional).unwrap();
        let coll = Collective::all_reduce(16, ByteSize::mb(16)).unwrap();
        let d = Simulator::new()
            .simulate(&topo, &direct(&topo, &coll).unwrap())
            .unwrap();
        let r = Simulator::new()
            .simulate(
                &topo,
                &crate::ring::ring_bidirectional(&topo, &coll).unwrap(),
            )
            .unwrap();
        assert!(
            d.collective_time() > r.collective_time() * 3,
            "direct {} should be much slower than ring {}",
            d.collective_time(),
            r.collective_time()
        );
    }

    #[test]
    fn rooted_patterns_unsupported() {
        let topo = Topology::fully_connected(4, spec()).unwrap();
        let coll = Collective::reduce(4, NpuId::new(0), ByteSize::mb(1)).unwrap();
        assert!(matches!(
            direct(&topo, &coll),
            Err(BaselineError::UnsupportedPattern { .. })
        ));
    }
}
