//! Word-slice scan kernels shared by [`crate::ChunkSet`] (one row) and
//! [`crate::ChunkMatrix`] (many rows in one flat buffer).
//!
//! Both picking kernels scan **circularly from an arbitrary bit offset**,
//! not just a word offset: the previous word-granular rotation always
//! resolved ties within the starting word toward the lowest set bit
//! (`trailing_zeros`), biasing "random" chunk selection toward low chunk
//! ids whenever several candidates shared a word. Rotating at bit
//! granularity makes every member of the scanned set reachable as the
//! first pick for some starting offset.
//!
//! The circular scan is structured as **two contiguous ranges** (start
//! word to the end, then the wrapped prefix) processed in fixed-width
//! 4×u64 blocks with an OR-reduced "any candidate in this block?" test
//! and a scalar tail. The block test is a straight-line AND/OR over
//! adjacent words — no modular indexing, no per-word branches — which
//! the compiler autovectorizes (one 256-bit lane per block); only a
//! non-empty block pays for the bit-granular resolution. [`any_and`] is
//! the standalone form of that block test, used by the matcher as an
//! early-exit pre-check before the full rotation.

//! These kernels decide *which* chunk a matcher probe picks, so their
//! tie-breaking is part of the matching semantics fingerprinted by
//! `MATCHER_VERSION` (tacos-core's cache module): changing scan order
//! here requires bumping that constant.

/// `true` if `a & b` has any set bit. Slices must have equal length.
///
/// The block-level "any candidate?" pre-check: 4-word AND/OR blocks with
/// per-block early exit and a scalar tail. Unlike the picking kernels it
/// never rotates, so an all-empty intersection — the common case for a
/// stale matcher probe — is one linear, autovectorizable pass.
pub(crate) fn any_and(a: &[u64], b: &[u64]) -> bool {
    let n = a.len();
    let mut w = 0;
    while w + 4 <= n {
        let or =
            (a[w] & b[w]) | (a[w + 1] & b[w + 1]) | (a[w + 2] & b[w + 2]) | (a[w + 3] & b[w + 3]);
        if or != 0 {
            return true;
        }
        w += 4;
    }
    while w < n {
        if a[w] & b[w] != 0 {
            return true;
        }
        w += 1;
    }
    false
}

/// First word index in `lo..hi` where `a[w] & b[w] != 0`, scanning in
/// 4-word OR-reduced blocks with a scalar tail.
fn first_and_word(a: &[u64], b: &[u64], lo: usize, hi: usize) -> Option<usize> {
    let (a, b) = (&a[lo..hi], &b[lo..hi]);
    let n = a.len();
    let mut w = 0;
    while w + 4 <= n {
        let or =
            (a[w] & b[w]) | (a[w + 1] & b[w + 1]) | (a[w + 2] & b[w + 2]) | (a[w + 3] & b[w + 3]);
        if or != 0 {
            // The block has a candidate; resolve to its first word.
            for k in w..w + 4 {
                if a[k] & b[k] != 0 {
                    return Some(lo + k);
                }
            }
        }
        w += 4;
    }
    while w < n {
        if a[w] & b[w] != 0 {
            return Some(lo + w);
        }
        w += 1;
    }
    None
}

/// Picks the first set bit of `a & b`, scanning circularly from
/// `start_bit`. Slices must have equal length.
pub(crate) fn pick_and(a: &[u64], b: &[u64], start_bit: usize) -> Option<u32> {
    let n = a.len();
    if n == 0 {
        return None;
    }
    let s = start_bit % (n * 64);
    let (w0, b0) = (s / 64, (s % 64) as u32);
    let head = u64::MAX << b0; // bits >= b0 within the starting word
    let and = (a[w0] & b[w0]) & head;
    if and != 0 {
        return Some((w0 * 64) as u32 + and.trailing_zeros());
    }
    // The circular scan unrolled into two contiguous block-scanned
    // ranges: start word (exclusive) to the end, then the wrapped
    // prefix, then the low bits of the start word.
    for (lo, hi) in [(w0 + 1, n), (0, w0)] {
        if let Some(w) = first_and_word(a, b, lo, hi) {
            return Some((w * 64) as u32 + (a[w] & b[w]).trailing_zeros());
        }
    }
    let and = (a[w0] & b[w0]) & !head;
    (and != 0).then(|| (w0 * 64) as u32 + and.trailing_zeros())
}

/// `first_and_word` guided by per-row word summaries: `sa`/`sb` hold one
/// bit per word of `a`/`b` (bit set iff the word is non-zero), so only
/// words populated on *both* sides are ever loaded — a run of words
/// empty on either side costs one AND + `trailing_zeros`. Returns the
/// same word the unguided scan would.
fn first_and_word_summary(
    a: &[u64],
    b: &[u64],
    sa: &[u64],
    sb: &[u64],
    lo: usize,
    hi: usize,
) -> Option<usize> {
    let mut w = lo;
    while w < hi {
        let (si, bit) = (w / 64, (w % 64) as u32);
        let s = sa[si] & sb[si] & (u64::MAX << bit);
        if s == 0 {
            // No co-populated word in the rest of this summary word:
            // jump past the 64 data words it covers.
            w = (si + 1) * 64;
            continue;
        }
        let cand = si * 64 + s.trailing_zeros() as usize;
        if cand >= hi {
            return None;
        }
        if a[cand] & b[cand] != 0 {
            return Some(cand);
        }
        w = cand + 1;
    }
    None
}

/// Summary-guided [`any_and`]: `true` if `a & b` has any set bit, loading
/// only words both summaries mark populated.
pub(crate) fn any_and_summary(a: &[u64], b: &[u64], sa: &[u64], sb: &[u64]) -> bool {
    first_and_word_summary(a, b, sa, sb, 0, a.len()).is_some()
}

/// Summary-guided [`pick_and`]: identical result, but both circular
/// ranges skip words either summary marks empty. Handles the empty
/// intersection itself (returns `None` after one pass over the
/// co-populated words), so callers need no separate emptiness pre-check.
pub(crate) fn pick_and_summary(
    a: &[u64],
    b: &[u64],
    sa: &[u64],
    sb: &[u64],
    start_bit: usize,
) -> Option<u32> {
    let n = a.len();
    if n == 0 {
        return None;
    }
    let s = start_bit % (n * 64);
    let (w0, b0) = (s / 64, (s % 64) as u32);
    let head = u64::MAX << b0; // bits >= b0 within the starting word
    let and = (a[w0] & b[w0]) & head;
    if and != 0 {
        return Some((w0 * 64) as u32 + and.trailing_zeros());
    }
    for (lo, hi) in [(w0 + 1, n), (0, w0)] {
        if let Some(w) = first_and_word_summary(a, b, sa, sb, lo, hi) {
            return Some((w * 64) as u32 + (a[w] & b[w]).trailing_zeros());
        }
    }
    let and = (a[w0] & b[w0]) & !head;
    (and != 0).then(|| (w0 * 64) as u32 + and.trailing_zeros())
}

/// `diff_where_in_range` guided by `a`'s word summary (the `minus` side
/// is complemented, so only `a`'s population can gate a word).
fn diff_where_summary_range(
    a: &[u64],
    minus: &[u64],
    sa: &[u64],
    lo: usize,
    hi: usize,
    pred: &mut impl FnMut(u32) -> bool,
) -> Option<u32> {
    let mut w = lo;
    while w < hi {
        let (si, bit) = (w / 64, (w % 64) as u32);
        let s = sa[si] & (u64::MAX << bit);
        if s == 0 {
            w = (si + 1) * 64;
            continue;
        }
        let cand = si * 64 + s.trailing_zeros() as usize;
        if cand >= hi {
            return None;
        }
        if let Some(found) = first_where(a[cand] & !minus[cand], cand, pred) {
            return Some(found);
        }
        w = cand + 1;
    }
    None
}

/// Summary-guided [`pick_diff_where`]: identical result, skipping words
/// where `a` is empty.
pub(crate) fn pick_diff_where_summary(
    a: &[u64],
    minus: &[u64],
    sa: &[u64],
    start_bit: usize,
    mut pred: impl FnMut(u32) -> bool,
) -> Option<u32> {
    let n = a.len();
    if n == 0 {
        return None;
    }
    let s = start_bit % (n * 64);
    let (w0, b0) = (s / 64, (s % 64) as u32);
    let head = u64::MAX << b0; // bits >= b0 within the starting word
    if let Some(bit) = first_where((a[w0] & !minus[w0]) & head, w0, &mut pred) {
        return Some(bit);
    }
    for (lo, hi) in [(w0 + 1, n), (0, w0)] {
        if let Some(bit) = diff_where_summary_range(a, minus, sa, lo, hi, &mut pred) {
            return Some(bit);
        }
    }
    first_where((a[w0] & !minus[w0]) & !head, w0, &mut pred)
}

/// First bit of `a & !minus` in words `lo..hi` satisfying `pred`,
/// scanning in 4-word OR-reduced blocks with a scalar tail. A block (or
/// word) whose candidates are all rejected by `pred` does not stop the
/// scan.
fn diff_where_in_range(
    a: &[u64],
    minus: &[u64],
    lo: usize,
    hi: usize,
    pred: &mut impl FnMut(u32) -> bool,
) -> Option<u32> {
    let n = hi - lo;
    let mut w = 0;
    while w + 4 <= n {
        let (j, k, l, m) = (lo + w, lo + w + 1, lo + w + 2, lo + w + 3);
        let or = (a[j] & !minus[j]) | (a[k] & !minus[k]) | (a[l] & !minus[l]) | (a[m] & !minus[m]);
        if or != 0 {
            for x in j..=m {
                if let Some(bit) = first_where(a[x] & !minus[x], x, pred) {
                    return Some(bit);
                }
            }
        }
        w += 4;
    }
    while w < n {
        let x = lo + w;
        if let Some(bit) = first_where(a[x] & !minus[x], x, pred) {
            return Some(bit);
        }
        w += 1;
    }
    None
}

/// Picks the first bit of `a & !minus` satisfying `pred`, scanning
/// circularly from `start_bit`. Slices must have equal length.
pub(crate) fn pick_diff_where(
    a: &[u64],
    minus: &[u64],
    start_bit: usize,
    mut pred: impl FnMut(u32) -> bool,
) -> Option<u32> {
    let n = a.len();
    if n == 0 {
        return None;
    }
    let s = start_bit % (n * 64);
    let (w0, b0) = (s / 64, (s % 64) as u32);
    let head = u64::MAX << b0; // bits >= b0 within the starting word
    if let Some(bit) = first_where((a[w0] & !minus[w0]) & head, w0, &mut pred) {
        return Some(bit);
    }
    for (lo, hi) in [(w0 + 1, n), (0, w0)] {
        if let Some(bit) = diff_where_in_range(a, minus, lo, hi, &mut pred) {
            return Some(bit);
        }
    }
    first_where((a[w0] & !minus[w0]) & !head, w0, &mut pred)
}

/// Lowest set bit of `word` (at word index `w`) passing `pred`, as a
/// global bit index.
fn first_where(mut word: u64, w: usize, pred: &mut impl FnMut(u32) -> bool) -> Option<u32> {
    while word != 0 {
        let b = word.trailing_zeros();
        word &= word - 1;
        let bit = (w * 64) as u32 + b;
        if pred(bit) {
            return Some(bit);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_rotation_reaches_every_member() {
        // Two candidates in the same word: word-granular rotation could
        // only ever pick bit 3 first; bit-granular rotation must reach
        // bit 40 when starting past 3.
        let a = [(1u64 << 3) | (1u64 << 40)];
        let b = [u64::MAX];
        assert_eq!(pick_and(&a, &b, 0), Some(3));
        assert_eq!(pick_and(&a, &b, 4), Some(40));
        assert_eq!(pick_and(&a, &b, 41), Some(3)); // wraps
    }

    #[test]
    fn wrap_revisits_low_bits_of_start_word() {
        let a = [1u64 << 2, 0];
        let b = [u64::MAX, u64::MAX];
        // Start in word 0 past bit 2: scan word 1, then wrap to bit 2.
        assert_eq!(pick_and(&a, &b, 10), Some(2));
    }

    #[test]
    fn diff_where_respects_pred_and_minus() {
        let a = [0b1111u64];
        let minus = [0b0001u64];
        assert_eq!(pick_diff_where(&a, &minus, 0, |_| true), Some(1));
        assert_eq!(pick_diff_where(&a, &minus, 0, |b| b >= 3), Some(3));
        assert_eq!(pick_diff_where(&a, &minus, 2, |_| true), Some(2));
        assert_eq!(pick_diff_where(&a, &minus, 0, |_| false), None);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(pick_and(&[], &[], 7), None);
        assert_eq!(pick_diff_where(&[], &[], 7, |_| true), None);
    }

    #[test]
    fn any_and_agrees_with_pick_and() {
        // Sparse patterns across block boundaries, tails of every length.
        for words in [1usize, 3, 4, 5, 7, 8, 11, 16] {
            for hot in 0..words * 64 {
                let mut a = vec![0u64; words];
                a[hot / 64] = 1 << (hot % 64);
                let b = vec![u64::MAX; words];
                assert!(any_and(&a, &b), "words={words} hot={hot}");
                assert_eq!(pick_and(&a, &b, 0), Some(hot as u32));
                assert!(!any_and(&a, &vec![0u64; words]));
            }
        }
        assert!(!any_and(&[], &[]));
    }

    /// Exact word summary of a word slice (1 bit per word), as
    /// `ChunkMatrix` maintains it.
    fn summarize(words: &[u64]) -> Vec<u64> {
        let mut s = vec![0u64; words.len().div_ceil(64).max(1)];
        for (i, &w) in words.iter().enumerate() {
            if w != 0 {
                s[i / 64] |= 1 << (i % 64);
            }
        }
        s
    }

    /// The summary-guided kernels must return exactly what the unguided
    /// ones do, for every start offset, slice length, and sparsity —
    /// including slices whose summaries are mostly zero (the late-game
    /// needs-row shape the guidance exists for).
    #[test]
    fn summary_kernels_match_unguided() {
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for words in [1usize, 2, 3, 4, 5, 7, 8, 9, 13, 20] {
            for sparsity in 0..3 {
                let thin = |mut w: u64, n: u32| -> u64 {
                    for _ in 0..n {
                        w &= w.rotate_left(17);
                    }
                    w
                };
                let a: Vec<u64> = (0..words)
                    .map(|i| {
                        if i % 3 == 1 && sparsity > 0 {
                            0 // whole blocks empty on one side
                        } else {
                            thin(next(), sparsity)
                        }
                    })
                    .collect();
                let b: Vec<u64> = (0..words)
                    .map(|i| if i % 4 == 2 { 0 } else { thin(next(), 1) })
                    .collect();
                let (sa, sb) = (summarize(&a), summarize(&b));
                assert_eq!(
                    any_and_summary(&a, &b, &sa, &sb),
                    any_and(&a, &b),
                    "words={words} sparsity={sparsity}"
                );
                for start in 0..words * 64 {
                    assert_eq!(
                        pick_and_summary(&a, &b, &sa, &sb, start),
                        pick_and(&a, &b, start),
                        "words={words} sparsity={sparsity} start={start}"
                    );
                    for modulo in 0..3 {
                        assert_eq!(
                            pick_diff_where_summary(&a, &b, &sa, start, |c| c % 3 == modulo),
                            pick_diff_where(&a, &b, start, |c| c % 3 == modulo),
                            "words={words} sparsity={sparsity} start={start}"
                        );
                    }
                }
            }
        }
        assert!(!any_and_summary(&[], &[], &[0], &[0]));
        assert_eq!(pick_and_summary(&[], &[], &[0], &[0], 5), None);
    }

    /// The block-scanned circular kernels must match a naive
    /// bit-at-a-time rotation exactly, for every start offset and slice
    /// length (incl. non-multiple-of-4 tails and the wrapped head word).
    #[test]
    fn blocked_scan_matches_naive_rotation() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            // Small xorshift so the test is self-contained.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for words in [1usize, 2, 3, 4, 5, 6, 7, 9, 13] {
            let a: Vec<u64> = (0..words).map(|_| next() & next() & next()).collect();
            let b: Vec<u64> = (0..words).map(|_| next() & next()).collect();
            let bits = words * 64;
            let naive_and = |start: usize| -> Option<u32> {
                (0..bits).map(|i| ((start + i) % bits) as u32).find(|&bit| {
                    a[bit as usize / 64] & b[bit as usize / 64] & (1 << (bit % 64)) != 0
                })
            };
            let naive_diff = |start: usize, modulo: u32| -> Option<u32> {
                (0..bits).map(|i| ((start + i) % bits) as u32).find(|&bit| {
                    a[bit as usize / 64] & !b[bit as usize / 64] & (1 << (bit % 64)) != 0
                        && bit % 3 == modulo
                })
            };
            for start in 0..bits {
                assert_eq!(pick_and(&a, &b, start), naive_and(start), "words={words}");
                for modulo in 0..3 {
                    assert_eq!(
                        pick_diff_where(&a, &b, start, |c| c % 3 == modulo),
                        naive_diff(start, modulo),
                        "words={words} start={start}"
                    );
                }
            }
        }
    }
}
