//! Shared setup for the experiment binaries (one per paper table/figure).

use std::time::Duration;

use tacos_baselines::{BaselineAlgorithm, BaselineKind};
use tacos_collective::{Collective, CollectivePattern};
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_sim::{SimReport, Simulator};
use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time, Topology};

/// The paper's default link: α = 0.5 µs, 1/β = 50 GB/s (§V-B footnote 8).
pub fn default_spec() -> LinkSpec {
    spec(0.5, 50.0)
}

/// A link spec from α (µs) and bandwidth (GB/s).
pub fn spec(alpha_us: f64, gbps: f64) -> LinkSpec {
    LinkSpec::new(Time::from_micros(alpha_us), Bandwidth::gbps(gbps))
}

/// Outcome of running one algorithm on one topology.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Display name.
    pub name: String,
    /// Collective completion time.
    pub time: Time,
    /// Achieved bandwidth in GB/s (`size / time`).
    pub bandwidth_gbps: f64,
    /// Wall-clock synthesis/generation time.
    pub synthesis: Duration,
    /// Simulation report (None for the ideal bound).
    pub report: Option<SimReport>,
}

/// Runs a baseline algorithm through the congestion-aware simulator.
///
/// # Panics
/// Panics on generation or simulation errors (experiment configurations
/// are fixed and known-good; failures indicate bugs worth crashing on).
pub fn run_baseline(topo: &Topology, collective: &Collective, kind: BaselineKind) -> Measurement {
    let name = kind.name().to_string();
    let started = std::time::Instant::now();
    let algo = BaselineAlgorithm::new(kind)
        .generate(topo, collective)
        .unwrap_or_else(|e| panic!("baseline {name} failed: {e}"));
    let synthesis = started.elapsed();
    let report = Simulator::new()
        .simulate(topo, &algo)
        .unwrap_or_else(|e| panic!("simulating {name} failed: {e}"));
    let time = report.collective_time();
    Measurement {
        name,
        time,
        bandwidth_gbps: gbps(collective.total_size(), time),
        synthesis,
        report: Some(report),
    }
}

/// Synthesizes with TACOS (best-of-`attempts`) and validates the schedule
/// through the simulator.
///
/// # Panics
/// Panics on synthesis or simulation errors.
pub fn run_tacos(
    topo: &Topology,
    collective: &Collective,
    attempts: usize,
    seed: u64,
) -> Measurement {
    let config = SynthesizerConfig::default()
        .with_seed(seed)
        .with_attempts(attempts.max(1));
    let started = std::time::Instant::now();
    let result = Synthesizer::new(config)
        .synthesize(topo, collective)
        .unwrap_or_else(|e| panic!("tacos synthesis failed: {e}"));
    let synthesis = started.elapsed();
    let report = Simulator::new()
        .simulate(topo, result.algorithm())
        .unwrap_or_else(|e| panic!("simulating tacos failed: {e}"));
    let time = report.collective_time();
    Measurement {
        name: "tacos".into(),
        time,
        bandwidth_gbps: gbps(collective.total_size(), time),
        synthesis,
        report: Some(report),
    }
}

/// The theoretical ideal as a [`Measurement`].
pub fn run_ideal(topo: &Topology, collective: &Collective) -> Measurement {
    let ideal = tacos_baselines::IdealBound::new(topo);
    let time = ideal.collective_time(collective.pattern(), collective.total_size());
    Measurement {
        name: "ideal".into(),
        time,
        bandwidth_gbps: gbps(collective.total_size(), time),
        synthesis: Duration::ZERO,
        report: None,
    }
}

/// Bandwidth in GB/s for a payload and completion time.
pub fn gbps(size: ByteSize, time: Time) -> f64 {
    if time.is_zero() {
        f64::INFINITY
    } else {
        size.as_u64() as f64 / time.as_secs_f64() / 1e9
    }
}

/// An All-Reduce with the paper's default chunking factor for TACOS-style
/// comparisons (4 chunks).
///
/// # Panics
/// Panics if the collective description is invalid.
pub fn all_reduce_chunked(n: usize, size: ByteSize, chunks: usize) -> Collective {
    Collective::with_chunking(CollectivePattern::AllReduce, n, chunks, size)
        .expect("valid collective")
}

/// Writes experiment CSV output under `results/` (best effort: failures
/// only warn, experiments still print to stdout).
pub fn write_results_csv(file: &str, rows: &[Vec<String>]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(file);
    if let Err(e) = std::fs::write(&path, tacos_report::to_csv(rows)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("(csv written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run_end_to_end() {
        let topo = Topology::mesh_2d(2, 2, default_spec()).unwrap();
        let coll = Collective::all_reduce(4, ByteSize::mb(4)).unwrap();
        let ring = run_baseline(&topo, &coll, BaselineKind::Ring);
        let tacos = run_tacos(&topo, &coll, 2, 1);
        let ideal = run_ideal(&topo, &coll);
        assert!(ideal.time <= tacos.time);
        assert!(tacos.bandwidth_gbps > 0.0);
        assert!(ring.report.is_some());
    }

    #[test]
    fn gbps_math() {
        assert!((gbps(ByteSize::gb(1), Time::from_millis(20.0)) - 50.0).abs() < 1e-9);
        assert!(gbps(ByteSize::gb(1), Time::ZERO).is_infinite());
    }
}
