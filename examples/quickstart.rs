//! Quickstart: synthesize a topology-aware All-Reduce for a 2D mesh and
//! compare it with the Ring baseline — the 60-second tour of the library.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tacos::prelude::*;
use tacos_baselines::{BaselineAlgorithm, BaselineKind, IdealBound};
use tacos_collective::CollectivePattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the network: a 5x5 2D mesh (asymmetric: border NPUs
    //    have fewer links) with the paper's default links.
    let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::mesh_2d(5, 5, spec)?;
    println!("topology : {topo}");

    // 2. Describe the collective: a 64 MB All-Reduce across all 25 NPUs.
    let size = ByteSize::mb(64);
    let collective = Collective::all_reduce(topo.num_npus(), size)?;

    // 3. Synthesize with TACOS (best of 8 randomized searches).
    let synthesizer = Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(8));
    let result = synthesizer.synthesize(&topo, &collective)?;
    let tacos = result.algorithm();
    println!(
        "tacos    : {} transfers, collective time {}",
        tacos.len(),
        result.collective_time()
    );

    // The synthesized schedule is contention-free by construction...
    tacos
        .validate_contention_free()
        .expect("TACOS schedules never contend");
    // ...and the congestion-aware simulator reproduces it exactly.
    let sim = Simulator::new();
    let tacos_report = sim.simulate(&topo, tacos)?;
    assert_eq!(tacos_report.collective_time(), result.collective_time());

    // 4. Compare with the Ring baseline under the same simulator.
    let ring = BaselineAlgorithm::new(BaselineKind::Ring).generate(&topo, &collective)?;
    let ring_report = sim.simulate(&topo, &ring)?;

    let ideal = IdealBound::new(&topo);
    let ideal_time = ideal.collective_time(CollectivePattern::AllReduce, size);
    println!(
        "ring     : {} ({:.2} GB/s)",
        ring_report.collective_time(),
        ring_report.bandwidth_gbps()
    );
    println!(
        "tacos    : {} ({:.2} GB/s) — {:.1}% of the ideal bound",
        tacos_report.collective_time(),
        tacos_report.bandwidth_gbps(),
        100.0 * ideal_time.as_secs_f64() / tacos_report.collective_time().as_secs_f64()
    );
    println!(
        "speedup  : {:.2}x over Ring",
        ring_report.collective_time().as_secs_f64() / tacos_report.collective_time().as_secs_f64()
    );
    Ok(())
}
