//! A deliberately small Rust lexer: enough syntax awareness that the
//! analyses never mistake the inside of a string, char literal, or
//! comment for code.
//!
//! The lexer does **not** try to be a parser. It produces a flat token
//! stream (identifiers, punctuation, literals) with line numbers, plus a
//! separate list of comments (which carry the `// SAFETY:` and
//! `// lint: allow(...)` annotations the analyses look for). Higher
//! layers pattern-match token windows — `.` `lock` `(` `)` — instead of
//! building an AST, which keeps the whole analyzer dependency-free and
//! reviewable.
//!
//! Handled: line and nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any `#` depth), byte and
//! byte-raw strings, char literals (incl. escapes), lifetimes (`'a` is
//! not a char literal), numbers, and multi-byte UTF-8 content inside
//! literals and comments.

/// What a token is; the text is carried alongside in [`Tok::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `lock`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `{`, `;`, …).
    Punct,
    /// String literal of any flavor (text not preserved).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) — distinct so it is never a char literal.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Token text; empty for string literals (content is irrelevant to
    /// every analysis and skipping it keeps memory flat).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A comment with its line span (block comments may span lines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Full comment text including the `//` or `/*` introducer.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order (not interleaved with `toks`).
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end of file (the analyses only ever
/// under-match on malformed input, they cannot panic).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start_line = line;
                let mut text = String::new();
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: start_line,
                    text,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start_line = line;
                let mut text = String::new();
                let mut depth = 1usize;
                text.push_str("/*");
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                    } else {
                        bump_line!(chars[i]);
                        text.push(chars[i]);
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text,
                });
                continue;
            }
        }
        // Identifiers — with raw/byte string prefix detection: `r`, `b`,
        // `br`, `rb` directly followed by a quote (or `#…"` for raw).
        if is_ident_start(c) {
            let start = i;
            let tok_line = line;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
            if is_str_prefix && i < n && (chars[i] == '"' || chars[i] == '#') {
                let raw = text.contains('r');
                if raw {
                    // Count the `#`s, expect `"`, then scan for `"` + #s.
                    let mut hashes = 0usize;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && chars[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if chars[i] == '"' {
                                let mut j = i + 1;
                                let mut seen = 0usize;
                                while j < n && seen < hashes && chars[j] == '#' {
                                    seen += 1;
                                    j += 1;
                                }
                                if seen == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            }
                            bump_line!(chars[i]);
                            i += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: tok_line,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier: fall through as ident.
                    let mut raw_ident = text;
                    for _ in 0..hashes {
                        raw_ident.push('#');
                    }
                    while i < n && is_ident_continue(chars[i]) {
                        raw_ident.push(chars[i]);
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: raw_ident,
                        line: tok_line,
                    });
                    continue;
                }
                // b"…": ordinary escaped string body.
                i += 1; // consume the quote
                scan_escaped_string(&chars, &mut i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tok_line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let tok_line = line;
            i += 1;
            scan_escaped_string(&chars, &mut i, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let tok_line = line;
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                i += 2;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' && i + 1 < n {
                        i += 1;
                    }
                    bump_line!(chars[i]);
                    i += 1;
                }
                i += 1; // closing quote (or EOF)
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                // 'x' — a one-char literal (covers 'a', '{', even '_').
                i += 3;
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                // Lifetime: 'ident with no closing quote.
                let start = i + 1;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tok_line,
                });
                continue;
            }
            // Lone quote (malformed): emit as punct and move on.
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: "'".into(),
                line: tok_line,
            });
            i += 1;
            continue;
        }
        // Numbers (incl. hex/float/underscores; suffixes eaten greedily).
        if c.is_ascii_digit() {
            let tok_line = line;
            let start = i;
            i += 1;
            while i < n
                && (is_ident_continue(chars[i])
                    || chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit())
            {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line: tok_line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Consumes an escaped string body starting *after* the opening quote,
/// leaving `i` after the closing quote.
fn scan_escaped_string(chars: &[char], i: &mut usize, line: &mut u32) {
    let n = chars.len();
    while *i < n {
        match chars[*i] {
            '"' => {
                *i += 1;
                return;
            }
            '\\' => {
                *i += 1;
                if *i < n {
                    if chars[*i] == '\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let lexed = lex("let a = \"x.lock()\"; // b.lock()\n/* c.lock() */ d.lock()");
        let names = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(names, ["let", "a", "d", "lock"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("b.lock()"));
    }

    #[test]
    fn raw_strings_with_hashes_and_inner_quotes() {
        let lexed = lex(r###"let x = r#"say "hi".lock()"#; y.read()"###);
        let names = idents(r###"let x = r#"say "hi".lock()"#; y.read()"###);
        assert_eq!(names, ["let", "x", "y", "read"]);
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let names = idents("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(names, ["fn", "f", "x", "str", "char"]);
        let lexed = lex("'a: loop { break 'a; }");
        assert_eq!(lexed.toks[0].kind, TokKind::Lifetime);
    }

    #[test]
    fn escaped_chars_and_nested_block_comments() {
        let names = idents("let q = '\\''; /* outer /* inner */ still */ tail");
        assert_eq!(names, ["let", "q", "tail"]);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let lexed = lex("a\n\"two\nlines\"\nb");
        let b = lexed.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }
}
