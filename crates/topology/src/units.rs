//! Physical units used throughout the workspace.
//!
//! All simulation and synthesis time is kept in **integer picoseconds**
//! ([`Time`]) so that event ordering is exact: the paper's link constants
//! (e.g. α = 0.5 µs, 1/β = 50 GB/s) and chunk sizes produce integral
//! picosecond costs without floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, stored as integer picoseconds.
///
/// `Time` is totally ordered and supports saturating-free checked arithmetic
/// through the standard operators (which panic on overflow in debug builds,
/// as integral types do).
///
/// ```
/// use tacos_topology::Time;
/// let alpha = Time::from_micros(0.5);
/// assert_eq!(alpha.as_ps(), 500_000);
/// assert_eq!(format!("{alpha}"), "500.000ns");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as an "unreachable" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from integer picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from (possibly fractional) nanoseconds.
    ///
    /// # Panics
    /// Panics if `ns` is negative or not finite.
    pub fn from_nanos(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "invalid nanosecond value: {ns}"
        );
        Time((ns * 1e3).round() as u64)
    }

    /// Creates a time from (possibly fractional) microseconds.
    ///
    /// # Panics
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "invalid microsecond value: {us}"
        );
        Time((us * 1e6).round() as u64)
    }

    /// Creates a time from (possibly fractional) milliseconds.
    ///
    /// # Panics
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "invalid millisecond value: {ms}"
        );
        Time((ms * 1e9).round() as u64)
    }

    /// Creates a time from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid second value: {secs}"
        );
        Time((secs * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// This time expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` iff this is `Time::ZERO`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction (clamps at zero instead of panicking).
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// The larger of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0 as f64;
        if self.0 == 0 {
            write!(f, "0s")
        } else if ps < 1e3 {
            write!(f, "{}ps", self.0)
        } else if ps < 1e6 {
            write!(f, "{:.3}ns", ps / 1e3)
        } else if ps < 1e9 {
            write!(f, "{:.3}us", ps / 1e6)
        } else if ps < 1e12 {
            write!(f, "{:.3}ms", ps / 1e9)
        } else {
            write!(f, "{:.3}s", ps / 1e12)
        }
    }
}

/// Link bandwidth, stored as bytes per second.
///
/// The paper quotes bandwidths in decimal GB/s (10⁹ bytes per second); use
/// [`Bandwidth::gbps`] for those. β (the serialization delay per byte of the
/// α–β cost model) is the reciprocal, available as
/// [`Bandwidth::beta_ps_per_byte`].
///
/// ```
/// use tacos_topology::Bandwidth;
/// let bw = Bandwidth::gbps(50.0);
/// assert_eq!(bw.beta_ps_per_byte(), 20.0); // 20 ps per byte
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from decimal gigabytes per second (10⁹ B/s).
    ///
    /// # Panics
    /// Panics if `gbps` is not finite or not strictly positive.
    pub fn gbps(gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps > 0.0,
            "invalid bandwidth: {gbps} GB/s"
        );
        Bandwidth(gbps * 1e9)
    }

    /// Creates a bandwidth from raw bytes per second.
    ///
    /// # Panics
    /// Panics if `bps` is not finite or not strictly positive.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth: {bps} B/s");
        Bandwidth(bps)
    }

    /// Bandwidth in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Bandwidth in decimal GB/s.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// β of the α–β model: serialization delay in picoseconds per byte.
    pub fn beta_ps_per_byte(self) -> f64 {
        1e12 / self.0
    }

    /// Time to serialize `size` bytes onto this link (β·n, no α).
    pub fn serialization_delay(self, size: ByteSize) -> Time {
        Time::from_ps((self.beta_ps_per_byte() * size.as_u64() as f64).round() as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB/s", self.as_gbps())
    }
}

/// A data size in bytes.
///
/// Decimal constructors (`kb`, `mb`, `gb`) match the paper's collective
/// sizes ("1 GB All-Reduce"); binary constructors (`kib`, `mib`, `gib`) are
/// provided for completeness.
///
/// ```
/// use tacos_topology::ByteSize;
/// assert_eq!(ByteSize::gb(1).as_u64(), 1_000_000_000);
/// assert_eq!(ByteSize::mib(1).as_u64(), 1_048_576);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Decimal kilobytes (10³ bytes).
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * 1_000)
    }

    /// Decimal megabytes (10⁶ bytes).
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * 1_000_000)
    }

    /// Decimal gigabytes (10⁹ bytes).
    pub const fn gb(n: u64) -> Self {
        ByteSize(n * 1_000_000_000)
    }

    /// Binary kibibytes (2¹⁰ bytes).
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Binary mebibytes (2²⁰ bytes).
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Binary gibibytes (2³⁰ bytes).
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in fractional decimal gigabytes.
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Integer division of the size into `parts` equal pieces (truncating).
    ///
    /// # Panics
    /// Panics if `parts` is zero.
    pub const fn split(self, parts: u64) -> ByteSize {
        ByteSize(self.0 / parts)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 < 1_000 {
            write!(f, "{}B", self.0)
        } else if b < 1e6 {
            write!(f, "{:.2}KB", b / 1e3)
        } else if b < 1e9 {
            write!(f, "{:.2}MB", b / 1e6)
        } else {
            write!(f, "{:.2}GB", b / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_are_exact() {
        assert_eq!(Time::from_ps(7).as_ps(), 7);
        assert_eq!(Time::from_nanos(30.0).as_ps(), 30_000);
        assert_eq!(Time::from_micros(0.5).as_ps(), 500_000);
        assert_eq!(Time::from_millis(1.5).as_ps(), 1_500_000_000);
        assert_eq!(Time::from_secs_f64(2.0).as_ps(), 2_000_000_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ps(100);
        let b = Time::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total.as_ps(), 180);
    }

    #[test]
    fn time_display_picks_unit() {
        assert_eq!(format!("{}", Time::ZERO), "0s");
        assert_eq!(format!("{}", Time::from_ps(999)), "999ps");
        assert_eq!(format!("{}", Time::from_ps(1_500)), "1.500ns");
        assert_eq!(format!("{}", Time::from_micros(2.25)), "2.250us");
        assert_eq!(format!("{}", Time::from_millis(3.0)), "3.000ms");
        assert_eq!(format!("{}", Time::from_secs_f64(1.25)), "1.250s");
    }

    #[test]
    fn time_ordering_and_conversion() {
        assert!(Time::from_ps(1) < Time::from_ps(2));
        assert_eq!(Time::from_secs_f64(0.5).as_secs_f64(), 0.5);
        assert_eq!(Time::from_micros(12.0).as_micros_f64(), 12.0);
    }

    #[test]
    #[should_panic(expected = "invalid microsecond value")]
    fn time_rejects_negative() {
        let _ = Time::from_micros(-1.0);
    }

    #[test]
    fn bandwidth_beta() {
        // 50 GB/s => 20 ps per byte (paper's default link).
        let bw = Bandwidth::gbps(50.0);
        assert!((bw.beta_ps_per_byte() - 20.0).abs() < 1e-9);
        // 1 GB over 50 GB/s = 20 ms.
        let t = bw.serialization_delay(ByteSize::gb(1));
        assert_eq!(t, Time::from_millis(20.0));
    }

    #[test]
    fn bandwidth_display_and_accessors() {
        let bw = Bandwidth::gbps(150.0);
        assert_eq!(bw.as_gbps(), 150.0);
        assert_eq!(format!("{bw}"), "150.00GB/s");
        let raw = Bandwidth::bytes_per_sec(1e9);
        assert_eq!(raw.as_gbps(), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::gbps(0.0);
    }

    #[test]
    fn byte_size_units() {
        assert_eq!(ByteSize::kb(1).as_u64(), 1_000);
        assert_eq!(ByteSize::mb(2).as_u64(), 2_000_000);
        assert_eq!(ByteSize::gb(1).as_u64(), 1_000_000_000);
        assert_eq!(ByteSize::kib(1).as_u64(), 1_024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1_048_576);
        assert_eq!(ByteSize::gib(1).as_u64(), 1_073_741_824);
    }

    #[test]
    fn byte_size_split_and_sum() {
        let total = ByteSize::gb(1);
        let per_chunk = total.split(64);
        assert_eq!(per_chunk.as_u64(), 15_625_000);
        assert_eq!(per_chunk * 64, total);
        let sum: ByteSize = vec![ByteSize::kb(1); 3].into_iter().sum();
        assert_eq!(sum, ByteSize::bytes(3_000));
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(format!("{}", ByteSize::bytes(12)), "12B");
        assert_eq!(format!("{}", ByteSize::kb(1)), "1.00KB");
        assert_eq!(format!("{}", ByteSize::mb(512)), "512.00MB");
        assert_eq!(format!("{}", ByteSize::gb(2)), "2.00GB");
    }
}
