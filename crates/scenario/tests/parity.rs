//! Parity tests: the checked-in scenario files under `scenarios/`
//! reproduce the same collective-time numbers as the hand-written bench
//! binaries they ported and replaced (same seeds, same measurement path:
//! generate/synthesize, then the congestion-aware simulator). The
//! binaries themselves are deleted; the reference measurements below
//! restate their exact configurations.

use std::path::PathBuf;

use tacos_collective::Collective;
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_scenario::{parse_baseline, run, ScenarioSpec};
use tacos_sim::Simulator;
use tacos_topology::{Bandwidth, ByteSize, LinkSpec, RingOrientation, Time, Topology};

fn scenario_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(file)
}

/// `scenarios/size_sweep.toml` ports `fig02b_size_sweep`: baselines on a
/// 128-NPU ring (α = 30 ns, 150 GB/s). The scenario runner must produce
/// exactly the times the binary's `run_baseline` path measures.
#[test]
fn size_sweep_scenario_matches_fig02b_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("size_sweep.toml")).unwrap();
    assert_eq!(spec.sweep.size, ["1KB", "512KB", "1MB", "1GB"]);
    assert_eq!(spec.sweep.algo, ["ring", "direct", "rhd", "dbt"]);
    // Keep the test fast in debug builds: drop the 1 GB point (the shape
    // of the comparison is identical per size).
    spec.sweep.size = vec!["1KB".into(), "1MB".into()];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 2 * 4);

    // Reference measurement: the exact code path of the fig02b binary
    // (BaselineAlgorithm::generate + Simulator), same topology and link.
    let link = LinkSpec::new(Time::from_micros(0.03), Bandwidth::gbps(150.0));
    let topo = Topology::ring(128, link, RingOrientation::Bidirectional).unwrap();
    for record in &summary.records {
        let p = &record.point;
        let size = match p.size_label.as_str() {
            "1KB" => ByteSize::kb(1),
            "1MB" => ByteSize::mb(1),
            other => panic!("unexpected size {other}"),
        };
        let coll = Collective::all_reduce(128, size).unwrap();
        let kind = parse_baseline(&p.algo, p.seed).unwrap();
        let algo = tacos_baselines::BaselineAlgorithm::new(kind)
            .generate(&topo, &coll)
            .unwrap();
        let expected = Simulator::new()
            .simulate(&topo, &algo)
            .unwrap()
            .collective_time();
        let got = record.result.as_ref().unwrap().collective_time;
        assert_eq!(got, expected, "collective time diverged for {}", p.label());
    }
}

/// `scenarios/mesh_allgather.toml` ports `fig14_mesh_allgather`: a
/// best-of-16 TACOS synthesis at seed 7 on a 3×3 mesh, simulator-checked.
#[test]
fn mesh_allgather_scenario_matches_fig14_synthesis() {
    let mut spec = ScenarioSpec::from_file(scenario_path("mesh_allgather.toml")).unwrap();
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    let got = summary.records[0].result.as_ref().unwrap();

    // Reference: the binary's configuration, verbatim.
    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::mesh_2d(3, 3, link).unwrap();
    let coll = Collective::all_gather(9, ByteSize::mb(9)).unwrap();
    let synth = Synthesizer::new(SynthesizerConfig::default().with_seed(7).with_attempts(16));
    let result = synth.synthesize(&topo, &coll).unwrap();
    assert_eq!(got.collective_time, result.collective_time());
    assert_eq!(got.transfers, result.algorithm().len() as u64);
    // The fig14 binary asserts the simulator confirms the planned time;
    // the scenario ran with simulate = true, so the same equality held.
    assert!(got.simulated);
}

/// `scenarios/topology_bw.toml` ports `fig02a_topology_bw`: Ring, Direct,
/// RHD, DBT, and TACOS All-Reduce on four 64-NPU topologies (α = 0.5 µs,
/// 50 GB/s, 1 GB), all measured through the congestion-aware simulator.
#[test]
fn topology_bw_scenario_matches_fig02a_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("topology_bw.toml")).unwrap();
    assert_eq!(
        spec.sweep.topology,
        ["ring:64", "fc:64", "mesh:8x8", "hypercube:4x4x4"]
    );
    assert_eq!(spec.sweep.algo, ["ring", "direct", "rhd", "dbt", "tacos"]);
    assert_eq!(spec.sweep.seed, [42]);
    assert_eq!(spec.sweep.attempts, [8]);
    // Keep the test fast in debug builds: one topology, a deterministic
    // baseline pair plus the TACOS synthesis at reduced best-of (the
    // comparison's shape is identical per topology/algorithm).
    spec.sweep.topology = vec!["mesh:8x8".into()];
    spec.sweep.algo = vec!["ring".into(), "dbt".into(), "tacos".into()];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 3);

    // Reference measurement: the exact code path of the fig02a binary
    // (generate/synthesize, then Simulator), same topology and link.
    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::mesh_2d(8, 8, link).unwrap();
    let coll = Collective::all_reduce(64, ByteSize::gb(1)).unwrap();
    for record in &summary.records {
        let p = &record.point;
        let algo = if p.algo == "tacos" {
            let synth =
                Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
            synth.synthesize(&topo, &coll).unwrap().into_algorithm()
        } else {
            let kind = parse_baseline(&p.algo, p.seed).unwrap();
            tacos_baselines::BaselineAlgorithm::new(kind)
                .generate(&topo, &coll)
                .unwrap()
        };
        let expected = Simulator::new()
            .simulate(&topo, &algo)
            .unwrap()
            .collective_time();
        let got = record.result.as_ref().unwrap().collective_time;
        assert_eq!(got, expected, "collective time diverged for {}", p.label());
    }
}

/// `scenarios/heatmap.toml` ports `fig01_heatmap`: per-link traffic
/// statistics (max link bytes, idle links, imbalance) of Direct, RHD,
/// Ring, and TACOS over four 64-NPU topologies under a 1 GB All-Reduce.
/// The scenario's `[report]` link-traffic columns must reproduce the
/// binary's exact computation over `SimReport::link_bytes`.
#[test]
fn heatmap_scenario_matches_fig01_link_stats() {
    let mut spec = ScenarioSpec::from_file(scenario_path("heatmap.toml")).unwrap();
    assert_eq!(
        spec.sweep.topology,
        ["fc:64", "ring:64", "mesh:8x8", "hypercube:4x4x4"]
    );
    assert_eq!(spec.sweep.algo, ["direct", "rhd", "ring", "tacos"]);
    assert_eq!(spec.sweep.attempts, [4]);
    // Keep the test fast in debug builds: one topology, one deterministic
    // baseline plus the TACOS synthesis at reduced best-of (the stats
    // computation under test is identical per point).
    spec.sweep.topology = vec!["mesh:8x8".into()];
    spec.sweep.algo = vec!["ring".into(), "tacos".into()];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 2);

    // Reference measurement: the fig01 binary's path — generate or
    // synthesize, simulate, then max/idle/imbalance over the per-link
    // byte counts.
    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::mesh_2d(8, 8, link).unwrap();
    let coll = Collective::all_reduce(64, ByteSize::gb(1)).unwrap();
    for record in &summary.records {
        let p = &record.point;
        let algo = if p.algo == "tacos" {
            let synth =
                Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
            synth.synthesize(&topo, &coll).unwrap().into_algorithm()
        } else {
            let kind = parse_baseline(&p.algo, p.seed).unwrap();
            tacos_baselines::BaselineAlgorithm::new(kind)
                .generate(&topo, &coll)
                .unwrap()
        };
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        let bytes = report.link_bytes();
        let max = *bytes.iter().max().unwrap();
        let idle = bytes.iter().filter(|&&b| b == 0).count();
        let mean = bytes.iter().sum::<u64>() as f64 / bytes.len() as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };

        let got = record.result.as_ref().unwrap();
        let stats = got.link_stats.expect("simulated point carries link stats");
        assert_eq!(got.collective_time, report.collective_time());
        assert_eq!(stats.max_link_bytes, max, "max diverged for {}", p.label());
        assert_eq!(stats.idle_links, idle, "idle diverged for {}", p.label());
        assert!(
            (stats.imbalance - imbalance).abs() < 1e-12,
            "imbalance diverged for {}",
            p.label()
        );
    }
}

/// `scenarios/themis.toml` ports `fig16_themis`: BlueConnect-4, Themis-4,
/// Themis-64, chunked TACOS, and the ideal bound on a 64-NPU torus and
/// hypercube grid (α = 0.7 µs, 25 GB/s) across sizes including the
/// fractional `0.5GB` the old parser rejected.
#[test]
fn themis_scenario_matches_fig16_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("themis.toml")).unwrap();
    assert_eq!(spec.sweep.topology, ["torus:4x4x4", "hypercube:4x4x4"]);
    assert_eq!(spec.sweep.size, ["64MB", "0.5GB", "1GB", "2GB"]);
    assert_eq!(
        spec.sweep.algo,
        ["blueconnect:4", "themis:4", "themis:64", "tacos:4", "ideal"]
    );
    // Keep the test fast in debug builds: the asymmetric grid (the
    // figure's interesting half), two sizes (one fractional), the
    // baseline variants and the bound; the chunked-TACOS execution path
    // is covered by the runner's `tacos:N` unit test.
    spec.sweep.topology = vec!["hypercube:4x4x4".into()];
    spec.sweep.size = vec!["64MB".into(), "0.5GB".into()];
    spec.sweep.algo = vec![
        "blueconnect:4".into(),
        "themis:4".into(),
        "themis:64".into(),
        "ideal".into(),
    ];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 2 * 4);

    // Reference measurement: the fig16 binary's path, verbatim — the
    // 0.5GB label is its hardcoded ByteSize::mb(500) workaround.
    let link = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
    let topo = Topology::hypercube_3d(4, 4, 4, link).unwrap();
    for record in &summary.records {
        let p = &record.point;
        let size = match p.size_label.as_str() {
            "64MB" => ByteSize::mb(64),
            "0.5GB" => ByteSize::mb(500),
            other => panic!("unexpected size {other}"),
        };
        assert_eq!(p.size, size, "parse_size diverged for {}", p.size_label);
        let coll = Collective::all_reduce(64, size).unwrap();
        let got = record.result.as_ref().unwrap();
        let expected = if p.algo == "ideal" {
            tacos_baselines::IdealBound::new(&topo)
                .collective_time(tacos_collective::CollectivePattern::AllReduce, size)
        } else {
            let kind = parse_baseline(&p.algo, p.seed).unwrap();
            let algo = tacos_baselines::BaselineAlgorithm::new(kind)
                .generate(&topo, &coll)
                .unwrap();
            Simulator::new()
                .simulate(&topo, &algo)
                .unwrap()
                .collective_time()
        };
        assert_eq!(
            got.collective_time,
            expected,
            "collective time diverged for {}",
            p.label()
        );
        // The binary reported bandwidth as size/time/1e9.
        let bw = size.as_u64() as f64 / expected.as_secs_f64() / 1e9;
        assert!((got.bandwidth_gbps.unwrap() - bw).abs() < 1e-9);
    }
}

/// `scenarios/multinode.toml` ports `table05_multinode`: All-Reduce on
/// multi-node 3D-RFS systems with explicit 4x2x1 tier-bandwidth ratios
/// (200/100/50 GB/s under the default 50 GB/s link), every algorithm's
/// collective time normalized over TACOS within its topology group, and
/// TACCL's scale-dependent search budgets pinned per topology through
/// `[[exclude]]` rules.
#[test]
fn multinode_scenario_matches_table05_measurements() {
    let spec = ScenarioSpec::from_file(scenario_path("multinode.toml")).unwrap();
    // The full grid: 4 topologies x 8 algorithms, minus the 9 excluded
    // off-scale TACCL combinations; no TACCL at all at 128 NPUs.
    let points = tacos_scenario::expand(&spec).unwrap();
    assert_eq!(points.len(), 4 * 8 - 9);
    assert!(!points
        .iter()
        .any(|p| p.topology == "rfs:2x4x16:4x2x1" && p.algo.starts_with("taccl")));
    assert_eq!(spec.report.normalize_over.as_deref(), Some("tacos"));

    // Execute the smallest scale (16 NPUs) and check against the
    // table05 binary's measurement path.
    let mut spec = spec;
    spec.sweep.topology = vec!["rfs:2x4x2:4x2x1".into()];
    spec.sweep.algo = vec![
        "tacos".into(),
        "taccl:2000".into(),
        "ring".into(),
        "ideal".into(),
    ];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 4);

    // Reference: the binary's exact topology constructor and per-algorithm
    // measurement paths (alpha = 0.5 us, tiers 200/100/50 GB/s, 256 MB).
    let topo = Topology::rfs_3d(2, 4, 2, Time::from_micros(0.5), [200.0, 100.0, 50.0]).unwrap();
    let n = topo.num_npus();
    assert_eq!(n, 16);
    let coll = Collective::all_reduce(n, ByteSize::mb(256)).unwrap();
    let reference = |algo: &str| -> Time {
        match algo {
            "tacos" => {
                let synth =
                    Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
                let result = synth.synthesize(&topo, &coll).unwrap();
                Simulator::new()
                    .simulate(&topo, result.algorithm())
                    .unwrap()
                    .collective_time()
            }
            "ideal" => tacos_baselines::IdealBound::new(&topo).collective_time(
                tacos_collective::CollectivePattern::AllReduce,
                coll.total_size(),
            ),
            other => {
                let kind = parse_baseline(other, 42).unwrap();
                let algo = tacos_baselines::BaselineAlgorithm::new(kind)
                    .generate(&topo, &coll)
                    .unwrap();
                Simulator::new()
                    .simulate(&topo, &algo)
                    .unwrap()
                    .collective_time()
            }
        }
    };
    let tacos_time = reference("tacos");
    let normalized = summary.normalized_times();
    for (record, norm) in summary.records.iter().zip(&normalized) {
        let p = &record.point;
        let expected = reference(&p.algo);
        let got = record.result.as_ref().unwrap();
        assert_eq!(
            got.collective_time,
            expected,
            "collective time diverged for {}",
            p.label()
        );
        // The table is normalized over TACOS; the baseline's own row is
        // exactly 1.0.
        let expected_norm = expected.as_secs_f64() / tacos_time.as_secs_f64();
        let norm = norm.expect("normalization column filled");
        assert_eq!(
            norm,
            expected_norm,
            "normalization diverged for {}",
            p.label()
        );
        if p.algo == "tacos" {
            assert_eq!(norm, 1.0);
        }
        if p.algo == "ideal" {
            assert!(norm < 1.0, "ideal must beat every real algorithm");
            assert_eq!(got.synthesis_seconds, 0.0);
        } else {
            assert!(got.synthesis_seconds > 0.0, "synthesis time recorded");
        }
    }
}

/// `scenarios/connectivity.toml` ports `fig10_connectivity`: TACOS
/// All-Gather synthesis (seed 1, best-of-16) on four 4-NPU topologies of
/// decreasing connectivity, printing the TEN's per-span occupancy. The
/// scenario's `[timeline]` stage rows must reproduce the binary's exact
/// per-span view: one stage per TEN time span, with the same
/// utilization.
#[test]
fn connectivity_scenario_matches_fig10_span_stages() {
    let mut spec = ScenarioSpec::from_file(scenario_path("connectivity.toml")).unwrap();
    assert_eq!(
        spec.sweep.topology,
        ["fc:4", "ring:4", "custom:asym6", "ring-uni:4"]
    );
    assert_eq!(spec.sweep.seed, [1]);
    assert_eq!(spec.sweep.attempts, [16]);
    let timeline = spec.timeline.expect("stages configured");
    assert!(timeline.stages);
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 4);

    // Reference: the binary's topologies and measurement path, verbatim —
    // synthesize at seed 1 / best-of-16, represent on the TEN, read the
    // span count and per-span utilization.
    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let asym6 = {
        let mut b = tacos_topology::TopologyBuilder::new("Asymmetric(6 links)");
        b.npus(4);
        b.bidi_link(
            tacos_topology::NpuId::new(0),
            tacos_topology::NpuId::new(1),
            link,
        );
        b.bidi_link(
            tacos_topology::NpuId::new(0),
            tacos_topology::NpuId::new(2),
            link,
        );
        b.link(
            tacos_topology::NpuId::new(2),
            tacos_topology::NpuId::new(3),
            link,
        );
        b.link(
            tacos_topology::NpuId::new(3),
            tacos_topology::NpuId::new(1),
            link,
        );
        b.build().unwrap()
    };
    let topologies = vec![
        Topology::fully_connected(4, link).unwrap(),
        Topology::ring(4, link, RingOrientation::Bidirectional).unwrap(),
        asym6,
        Topology::ring(4, link, RingOrientation::Unidirectional).unwrap(),
    ];
    for (record, topo) in summary.records.iter().zip(&topologies) {
        let coll = Collective::all_gather(4, ByteSize::mb(4)).unwrap();
        let synth = Synthesizer::new(SynthesizerConfig::default().with_seed(1).with_attempts(16));
        let result = synth.synthesize(topo, &coll).unwrap();
        let ten = tacos_ten::TimeExpandedNetwork::represent(topo, result.algorithm()).unwrap();

        let got = record.result.as_ref().unwrap();
        assert_eq!(got.collective_time, result.collective_time());
        let stages = &got.timeline.as_ref().expect("stage rows captured").stages;
        assert_eq!(
            stages.len(),
            ten.steps(),
            "span count diverged on {}",
            record.point.label()
        );
        for (stage, step) in stages.iter().zip(0..ten.steps()) {
            assert!(
                (stage.utilization - ten.step_utilization(step)).abs() < 1e-12,
                "span {step} utilization diverged on {}",
                record.point.label()
            );
            assert_eq!(stage.start, ten.time_of_step(step));
        }
    }
    // The paper's Fig. 10 shape: steps grow as connectivity drops, and
    // the unidirectional ring needs every TEN edge (utilization 1.0).
    let steps: Vec<usize> = summary
        .records
        .iter()
        .map(|r| {
            r.result
                .as_ref()
                .unwrap()
                .timeline
                .as_ref()
                .unwrap()
                .stages
                .len()
        })
        .collect();
    assert_eq!(steps, [1, 2, 3, 3]);
    let uni = summary.records[3].result.as_ref().unwrap();
    for stage in &uni.timeline.as_ref().unwrap().stages {
        assert!((stage.utilization - 1.0).abs() < 1e-12);
    }
}

/// `scenarios/hetero.toml` ports `fig15_hetero`: All-Reduce on the three
/// heterogeneous systems of §VI-B.1 with absolute per-tier bandwidths as
/// family-form `[[topologies]]` entries. The scenario must reproduce the
/// binary's measurement path on the DragonFly system (the other fabrics
/// differ only in the constructor, covered by the family-form unit
/// tests).
#[test]
fn hetero_scenario_matches_fig15_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("hetero.toml")).unwrap();
    assert_eq!(
        spec.sweep.topology,
        [
            "custom:dragonfly_5x4",
            "custom:switch_8x4",
            "custom:rfs_2x4x8"
        ]
    );
    assert_eq!(
        spec.sweep.algo,
        ["ring", "direct", "taccl:5000", "tacos", "ideal"]
    );
    assert_eq!(spec.sweep.attempts, [8]);
    // Keep the test fast in debug builds: one fabric, the deterministic
    // baselines plus TACOS at reduced best-of and the bound.
    spec.sweep.topology = vec!["custom:dragonfly_5x4".into()];
    spec.sweep.algo = vec![
        "ring".into(),
        "direct".into(),
        "tacos".into(),
        "ideal".into(),
    ];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 4);

    // Reference: the binary's exact DragonFly constructor — local 400,
    // global 200 GB/s at alpha = 0.5 us — and measurement paths.
    let alpha = Time::from_micros(0.5);
    let topo = Topology::dragonfly(
        5,
        4,
        LinkSpec::new(alpha, Bandwidth::gbps(400.0)),
        LinkSpec::new(alpha, Bandwidth::gbps(200.0)),
    )
    .unwrap();
    let n = topo.num_npus();
    let size = ByteSize::gb(1);
    let coll = Collective::all_reduce(n, size).unwrap();
    let ideal_time = tacos_baselines::IdealBound::new(&topo)
        .collective_time(tacos_collective::CollectivePattern::AllReduce, size);
    for record in &summary.records {
        let p = &record.point;
        let got = record.result.as_ref().unwrap();
        if p.algo == "ideal" {
            assert_eq!(got.collective_time, ideal_time);
            continue;
        }
        let report = if p.algo == "tacos" {
            let synth =
                Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
            let result = synth.synthesize(&topo, &coll).unwrap();
            Simulator::new()
                .simulate(&topo, result.algorithm())
                .unwrap()
        } else {
            let kind = parse_baseline(&p.algo, p.seed).unwrap();
            let algo = tacos_baselines::BaselineAlgorithm::new(kind)
                .generate(&topo, &coll)
                .unwrap();
            Simulator::new().simulate(&topo, &algo).unwrap()
        };
        assert_eq!(
            got.collective_time,
            report.collective_time(),
            "collective time diverged for {}",
            p.label()
        );
        // Fig. 15's companion metrics: efficiency vs the bound and the
        // Fig. 15(b) average link utilization.
        let eff = ideal_time.as_secs_f64() / report.collective_time().as_secs_f64();
        assert!((got.efficiency - eff).abs() < 1e-12);
        let stats = got.link_stats.expect("simulated point");
        assert!((stats.avg_utilization - report.average_utilization()).abs() < 1e-12);
    }
}

/// `scenarios/utilization.toml` ports `fig18_utilization`: chunked TACOS
/// vs Ring during a 1 GB All-Reduce with the utilization-over-time
/// curves. Parity runs at the binary's `--quick` scale (3x3x3 torus) and
/// checks the timeline buckets against the same simulator report.
#[test]
fn utilization_scenario_matches_fig18_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("utilization.toml")).unwrap();
    assert_eq!(
        spec.sweep.topology,
        ["torus:5x5x5", "mesh:10x10", "hypercube:5x5x5"]
    );
    assert_eq!(spec.sweep.algo, ["tacos:4", "ring"]);
    assert_eq!(spec.sweep.attempts, [4]);
    assert_eq!(spec.timeline.map(|t| t.buckets), Some(60));
    // The binary's --quick scale, reduced best-of (shape identical).
    spec.sweep.topology = vec!["torus:3x3x3".into()];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 2);

    // Reference: the binary's measurement path — chunked TACOS synthesis
    // and the Ring baseline through the simulator, utilization timeline
    // at 60 buckets, efficiency vs the ideal bound.
    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::torus_3d(3, 3, 3, link).unwrap();
    let n = topo.num_npus();
    let size = ByteSize::gb(1);
    let ideal_time = tacos_baselines::IdealBound::new(&topo)
        .collective_time(tacos_collective::CollectivePattern::AllReduce, size);
    for record in &summary.records {
        let p = &record.point;
        let report = if p.algo == "tacos:4" {
            let chunked = Collective::with_chunking(
                tacos_collective::CollectivePattern::AllReduce,
                n,
                4,
                size,
            )
            .unwrap();
            let synth =
                Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
            let result = synth.synthesize(&topo, &chunked).unwrap();
            Simulator::new()
                .simulate(&topo, result.algorithm())
                .unwrap()
        } else {
            let coll = Collective::all_reduce(n, size).unwrap();
            let algo = tacos_baselines::BaselineAlgorithm::new(tacos_baselines::BaselineKind::Ring)
                .generate(&topo, &coll)
                .unwrap();
            Simulator::new().simulate(&topo, &algo).unwrap()
        };
        let got = record.result.as_ref().unwrap();
        assert_eq!(
            got.collective_time,
            report.collective_time(),
            "collective time diverged for {}",
            p.label()
        );
        let stats = got.link_stats.expect("simulated point");
        assert!((stats.avg_utilization - report.average_utilization()).abs() < 1e-12);
        let eff = ideal_time.as_secs_f64() / report.collective_time().as_secs_f64();
        assert!((got.efficiency - eff).abs() < 1e-12);
        // The timeline artifact carries the same curve the binary drew:
        // identical buckets from an identical simulation.
        let buckets = &got.timeline.as_ref().expect("buckets captured").buckets;
        let expected = report.timeline(60);
        assert_eq!(buckets.len(), expected.len());
        for (a, b) in buckets.iter().zip(&expected) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.busy, b.busy);
            assert_eq!(a.cumulative_bytes, b.cumulative_bytes);
        }
    }
}

/// `scenarios/failure.toml` ports `failure_injection`: cumulative link
/// kills on a 4x4 torus, Ring rerouting vs TACOS re-synthesizing. The
/// binary removed victims from the *re-densified* fabric
/// (`(failures * 13) % remaining`, skipping disconnecting picks); the
/// scenario's explicit `without_links` lists name the same victims in
/// healthy-topology ids, which this test verifies by replaying the
/// binary's loop verbatim.
#[test]
fn failure_scenario_matches_failure_injection_loop() {
    let mut spec = ScenarioSpec::from_file(scenario_path("failure.toml")).unwrap();
    assert_eq!(spec.sweep.topology, ["torus:4x4"]);
    assert_eq!(spec.sweep.algo, ["ring", "tacos"]);
    // The binary used SynthesizerConfig::default() (seed 0x7AC05) with 8
    // attempts.
    assert_eq!(spec.sweep.seed, [0x7AC05]);
    assert_eq!(spec.sweep.attempts, [8]);
    let labels: Vec<String> = spec.sweep.without_links.iter().map(|w| w.label()).collect();
    assert_eq!(labels, ["0", "13", "13+27", "13+27+41"]);
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 4 * 2);

    // Reference: the binary's loop, verbatim — kill a pseudo-random link
    // of the *current* (re-densified) fabric per round, keep it only if
    // the fabric stays strongly connected.
    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let size = ByteSize::mb(256);
    let coll = Collective::all_reduce(16, size).unwrap();
    let mut topo = Topology::torus_2d(4, 4, link).unwrap();
    let mut reference: Vec<(Time, Time)> = Vec::new();
    let healthy = topo.clone();
    let victim_lists: [&[u32]; 4] = [&[], &[13], &[13, 27], &[13, 27, 41]];
    for (failures, victim_list) in victim_lists.iter().enumerate() {
        if failures > 0 {
            let victim = tacos_topology::LinkId::new(((failures * 13) % topo.num_links()) as u32);
            let candidate = topo.without_link(victim);
            if candidate.is_strongly_connected() {
                topo = candidate;
            }
        }
        // The binary accepted every kill (none disconnected), and the
        // scenario's explicit healthy-topology id lists rebuild the same
        // fabric link-for-link — the id translation is faithful.
        assert_eq!(topo.num_links(), 64 - failures, "binary skipped a kill");
        let ids: Vec<tacos_topology::LinkId> = victim_list
            .iter()
            .map(|&id| tacos_topology::LinkId::new(id))
            .collect();
        let from_lists = healthy.without_links(&ids).unwrap();
        assert_eq!(from_lists.num_links(), topo.num_links());
        for (a, b) in from_lists.links().iter().zip(topo.links()) {
            assert_eq!((a.src(), a.dst(), a.spec()), (b.src(), b.dst(), b.spec()));
        }
        let ring = tacos_baselines::BaselineAlgorithm::new(tacos_baselines::BaselineKind::Ring)
            .generate(&topo, &coll)
            .unwrap();
        let ring_time = Simulator::new()
            .simulate(&topo, &ring)
            .unwrap()
            .collective_time();
        let tacos = Synthesizer::new(SynthesizerConfig::default().with_attempts(8))
            .synthesize(&topo, &coll)
            .unwrap();
        reference.push((ring_time, tacos.collective_time()));
    }
    let normalized = summary.normalized_times();
    for (level, (ring_time, tacos_time)) in reference.iter().enumerate() {
        let ring_rec = &summary.records[2 * level];
        let tacos_rec = &summary.records[2 * level + 1];
        assert_eq!(ring_rec.point.algo, "ring");
        assert_eq!(tacos_rec.point.algo, "tacos");
        assert_eq!(
            ring_rec.result.as_ref().unwrap().collective_time,
            *ring_time,
            "ring diverged at {} failures",
            level
        );
        assert_eq!(
            tacos_rec.result.as_ref().unwrap().collective_time,
            *tacos_time,
            "tacos diverged at {} failures",
            level
        );
        // The table the binary printed was tacos/ring bandwidth; the
        // scenario's normalized_time is the time ratio (its inverse).
        let expected_norm = tacos_time.as_secs_f64() / ring_time.as_secs_f64();
        assert_eq!(normalized[2 * level + 1].unwrap(), expected_norm);
        assert_eq!(normalized[2 * level].unwrap(), 1.0);
    }
}

/// `scenarios/ccube.toml` ports `fig17b_ccube`: TACOS vs C-Cube on the
/// DGX-1 (alpha = 0.7 us, 25 GB/s) with the embedded multi-Ring baseline
/// and the ideal bound as an `ideal` algo row — closing the last inline
/// ideal-bound computation in the bench crate.
#[test]
fn ccube_scenario_matches_fig17b_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("ccube.toml")).unwrap();
    assert_eq!(spec.sweep.topology, ["dgx1"]);
    assert_eq!(spec.sweep.size, ["0.5GB", "1GB", "2GB"]);
    assert_eq!(
        spec.sweep.algo,
        ["ccube:4", "ring-embedded:3", "tacos:4", "ideal"]
    );
    // Keep the test fast in debug builds: one size (the fractional one),
    // reduced best-of.
    spec.sweep.size = vec!["0.5GB".into()];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 4);

    // Reference: the binary's configuration, verbatim — the 0.5GB label
    // parses to its ByteSize::mb(500).
    let link = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
    let topo = Topology::dgx1(link).unwrap();
    let size = ByteSize::mb(500);
    let coll = Collective::all_reduce(8, size).unwrap();
    for record in &summary.records {
        let p = &record.point;
        let got = record.result.as_ref().unwrap();
        assert_eq!(p.size, size);
        let expected = match p.algo.as_str() {
            "ideal" => tacos_baselines::IdealBound::new(&topo)
                .collective_time(tacos_collective::CollectivePattern::AllReduce, size),
            "tacos:4" => {
                let chunked = Collective::with_chunking(
                    tacos_collective::CollectivePattern::AllReduce,
                    8,
                    4,
                    size,
                )
                .unwrap();
                let synth =
                    Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
                let result = synth.synthesize(&topo, &chunked).unwrap();
                Simulator::new()
                    .simulate(&topo, result.algorithm())
                    .unwrap()
                    .collective_time()
            }
            other => {
                let kind = parse_baseline(other, p.seed).unwrap();
                let algo = tacos_baselines::BaselineAlgorithm::new(kind)
                    .generate(&topo, &coll)
                    .unwrap();
                let report = Simulator::new().simulate(&topo, &algo).unwrap();
                if other == "ccube:4" {
                    // The binary's "C-Cube idle links" column.
                    let idle = report.link_bytes().iter().filter(|&&b| b == 0).count();
                    assert_eq!(got.link_stats.unwrap().idle_links, idle);
                    assert!(idle > 0, "C-Cube must idle NVLinks");
                }
                report.collective_time()
            }
        };
        assert_eq!(
            got.collective_time,
            expected,
            "collective time diverged for {}",
            p.label()
        );
        let bw = size.as_u64() as f64 / expected.as_secs_f64() / 1e9;
        assert!((got.bandwidth_gbps.unwrap() - bw).abs() < 1e-9);
    }
}

/// `scenarios/scalability.toml` expands to the fig19 grid shape.
#[test]
fn scalability_scenario_expands_to_fig19_grid() {
    let spec = ScenarioSpec::from_file(scenario_path("scalability.toml")).unwrap();
    let points = tacos_scenario::expand(&spec).unwrap();
    assert_eq!(points.len(), 12, "6 mesh sides + 6 hypercube sides");
    assert!(points.iter().all(|p| p.algo == "tacos" && p.seed == 1));
    assert!(points.iter().any(|p| p.topology == "mesh:32x32"));
    assert!(points.iter().any(|p| p.topology == "hypercube:10x10x10"));
}

/// `scenarios/multitree.toml` ports `fig17a_multitree`: TACOS vs
/// MultiTree (with Themis-4 and the ideal bound) on 16-NPU 2D torus and
/// mesh at α = 0.15 µs / 16 GB/s. The binary ran chunked TACOS
/// (4 chunks, seed 42, best-of-8) and unchunked baselines, all through
/// the congestion-aware simulator.
#[test]
fn multitree_scenario_matches_fig17a_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("multitree.toml")).unwrap();
    assert_eq!(spec.sweep.topology, ["torus:4x4", "mesh:4x4"]);
    assert_eq!(spec.sweep.size, ["1MB", "4MB", "32MB"]);
    assert_eq!(
        spec.sweep.algo,
        ["multitree", "themis:4", "tacos:4", "ideal"]
    );
    assert_eq!(spec.sweep.seed, [42]);
    assert_eq!(spec.sweep.attempts, [8]);
    // Keep the test fast in debug builds: the mesh half (where the paper
    // reports the larger gap), two sizes, reduced best-of.
    spec.sweep.topology = vec!["mesh:4x4".into()];
    spec.sweep.size = vec!["1MB".into(), "4MB".into()];
    spec.sweep.attempts = vec![2];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 2 * 4);

    // Reference: the binary's configuration, verbatim — spec(0.15, 16.0),
    // unchunked baselines, 4-chunk TACOS at seed 42.
    let link = LinkSpec::new(Time::from_micros(0.15), Bandwidth::gbps(16.0));
    let topo = Topology::mesh_2d(4, 4, link).unwrap();
    for record in &summary.records {
        let p = &record.point;
        let size = match p.size_label.as_str() {
            "1MB" => ByteSize::mb(1),
            "4MB" => ByteSize::mb(4),
            other => panic!("unexpected size {other}"),
        };
        let coll = Collective::all_reduce(16, size).unwrap();
        let got = record.result.as_ref().unwrap();
        let expected = match p.algo.as_str() {
            "ideal" => tacos_baselines::IdealBound::new(&topo)
                .collective_time(tacos_collective::CollectivePattern::AllReduce, size),
            "tacos:4" => {
                let chunked = Collective::with_chunking(
                    tacos_collective::CollectivePattern::AllReduce,
                    16,
                    4,
                    size,
                )
                .unwrap();
                let synth =
                    Synthesizer::new(SynthesizerConfig::default().with_seed(42).with_attempts(2));
                let result = synth.synthesize(&topo, &chunked).unwrap();
                Simulator::new()
                    .simulate(&topo, result.algorithm())
                    .unwrap()
                    .collective_time()
            }
            other => {
                let kind = parse_baseline(other, p.seed).unwrap();
                let algo = tacos_baselines::BaselineAlgorithm::new(kind)
                    .generate(&topo, &coll)
                    .unwrap();
                Simulator::new()
                    .simulate(&topo, &algo)
                    .unwrap()
                    .collective_time()
            }
        };
        assert_eq!(
            got.collective_time,
            expected,
            "collective time diverged for {}",
            p.label()
        );
        // The binary reported bandwidth as size/time/1e9.
        let bw = size.as_u64() as f64 / expected.as_secs_f64() / 1e9;
        assert!((got.bandwidth_gbps.unwrap() - bw).abs() < 1e-9);
    }
    // The paper's Fig. 17(a) shape at bandwidth-bound sizes: TACOS above
    // MultiTree (which cannot overlap chunks).
    let bw_of = |algo: &str, size: &str| {
        summary
            .records
            .iter()
            .find(|r| r.point.algo == algo && r.point.size_label == size)
            .unwrap()
            .result
            .as_ref()
            .unwrap()
            .bandwidth_gbps
            .unwrap()
    };
    assert!(bw_of("tacos:4", "4MB") > bw_of("multitree", "4MB"));
}

/// `scenarios/training.toml` ports `fig20_training`: end-to-end training
/// iterations on 3D-RFS clusters, each model pinned to its paper scale
/// through `[[exclude]]` rules, normalized over TACOS. Parity runs the
/// GNMT half (64-NPU `rfs:2x4x8`, the paper's 200/100/50 GB/s tiers via
/// the default 4x2x1 ratios) and checks every mechanism's iteration
/// total and breakdown against `TrainingEvaluator`'s measurement path —
/// the exact code the binary called.
#[test]
fn training_scenario_matches_fig20_measurements() {
    let spec = ScenarioSpec::from_file(scenario_path("training.toml")).unwrap();
    assert_eq!(spec.sweep.topology, ["rfs:2x4x8", "rfs:2x4x32"]);
    assert_eq!(
        spec.sweep.algo,
        ["ring", "direct", "themis:4", "tacos", "ideal"]
    );
    assert_eq!(spec.sweep.seed, [0x7AC05]);
    assert_eq!(spec.sweep.attempts, [4]);
    assert_eq!(spec.sweep.chunks, [4]);
    match &spec.evaluation {
        tacos_scenario::Evaluation::Training(w) => {
            assert_eq!(w.models, ["gnmt", "resnet50", "turing_nlg"]);
        }
        other => panic!("expected training evaluation, got {other:?}"),
    }
    // The model-topology pairing: 5 mechanisms x 3 paper rows.
    let points = tacos_scenario::expand(&spec).unwrap();
    assert_eq!(points.len(), 3 * 5);
    assert!(!points
        .iter()
        .any(|p| p.topology == "rfs:2x4x8" && p.model.as_deref() != Some("gnmt")));
    // The [quick] grid restates the binary's --quick flag: the large
    // system shrinks to 2x4x16.
    let quick = spec.quick.as_deref().expect("[quick] declared");
    assert_eq!(quick.sweep.topology, ["rfs:2x4x8", "rfs:2x4x16"]);

    // Execute the GNMT half at reduced best-of and compare against the
    // binary's measurement path: TrainingEvaluator under each mechanism.
    let mut spec = spec;
    spec.sweep.topology = vec!["rfs:2x4x8".into()];
    spec.sweep.attempts = vec![2];
    match &mut spec.evaluation {
        tacos_scenario::Evaluation::Training(w) => w.models = vec!["gnmt".into()],
        _ => unreachable!(),
    }
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 5);

    let topo = Topology::rfs_3d(2, 4, 8, Time::from_micros(0.5), [200.0, 100.0, 50.0]).unwrap();
    let workload = tacos_workload::Workload::gnmt();
    let evaluator = tacos_workload::TrainingEvaluator::new(&topo).with_chunks(4);
    let base = SynthesizerConfig::default()
        .with_seed(0x7AC05)
        .with_attempts(2);
    let mut totals = std::collections::HashMap::new();
    for record in &summary.records {
        let p = &record.point;
        let mechanism = tacos_workload::Mechanism::parse(&p.algo, &base).unwrap();
        let expected = evaluator.evaluate(&workload, &mechanism).unwrap();
        let got = record.result.as_ref().unwrap();
        let breakdown = got.training.expect("training points carry a breakdown");
        assert_eq!(
            got.collective_time,
            expected.total(),
            "iteration total diverged for {}",
            p.label()
        );
        assert_eq!(breakdown.weight_grad_comm, expected.weight_grad_comm);
        assert_eq!(breakdown.input_grad_comm, Time::ZERO, "GNMT is pure DP");
        assert_eq!(breakdown.forward, workload.forward());
        assert_eq!(breakdown.backward, workload.backward());
        totals.insert(p.algo.clone(), got.collective_time);
    }
    // Fig. 20's framing: normalized over TACOS, ideal at or below it.
    let normalized = summary.normalized_times();
    let tacos_total = totals["tacos"].as_secs_f64();
    for (record, norm) in summary.records.iter().zip(&normalized) {
        let expected = record
            .result
            .as_ref()
            .unwrap()
            .collective_time
            .as_secs_f64()
            / tacos_total;
        assert_eq!(norm.unwrap(), expected);
    }
    assert!(totals["ideal"] <= totals["tacos"]);
    assert!(totals["tacos"] <= totals["ring"]);
}

/// `scenarios/breakdown.toml` ports `fig21_breakdown`: the four-way
/// fwd/bwd/exposed-IG/exposed-WG breakdown on the 3D torus, normalized
/// over Ring. Parity runs the binary's `--quick` scale (4x4x8 torus,
/// its `[quick]` section as data) on ResNet-50 and checks each
/// mechanism's breakdown against `TrainingEvaluator` plus the
/// column-sum identity the figure's stacked bars rely on.
#[test]
fn breakdown_scenario_matches_fig21_measurements() {
    let spec = ScenarioSpec::from_file(scenario_path("breakdown.toml")).unwrap();
    assert_eq!(spec.sweep.topology, ["torus:8x8x16"]);
    assert_eq!(spec.sweep.algo, ["ring", "themis:4", "tacos", "ideal"]);
    assert_eq!(spec.sweep.seed, [0x7AC05]);
    assert_eq!(spec.sweep.attempts, [1]);
    match &spec.evaluation {
        tacos_scenario::Evaluation::Training(w) => {
            assert_eq!(w.models, ["resnet50", "msft_1t"]);
            assert_eq!(w.parallelism, tacos_scenario::Parallelism::Hybrid);
        }
        other => panic!("expected training evaluation, got {other:?}"),
    }
    assert_eq!(spec.report.normalize_over.as_deref(), Some("ring"));

    // The binary's --quick scale is the scenario's [quick] grid.
    let mut quick = spec.quick.as_deref().expect("[quick] declared").clone();
    assert_eq!(quick.sweep.topology, ["torus:4x4x8"]);
    match &mut quick.evaluation {
        tacos_scenario::Evaluation::Training(w) => w.models = vec!["resnet50".into()],
        _ => unreachable!(),
    }
    quick.run.cache = None;
    quick.run.quiet = true;
    quick.output = None;
    let summary = run(&quick).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 4);

    let link = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::torus_3d(4, 4, 8, link).unwrap();
    let workload = tacos_workload::Workload::resnet50();
    let evaluator = tacos_workload::TrainingEvaluator::new(&topo).with_chunks(4);
    let base = SynthesizerConfig::default()
        .with_seed(0x7AC05)
        .with_attempts(1);
    let ring_total = summary.records[0]
        .result
        .as_ref()
        .unwrap()
        .collective_time
        .as_secs_f64();
    let normalized = summary.normalized_times();
    for (record, norm) in summary.records.iter().zip(&normalized) {
        let p = &record.point;
        let mechanism = tacos_workload::Mechanism::parse(&p.algo, &base).unwrap();
        let expected = evaluator.evaluate(&workload, &mechanism).unwrap();
        let got = record.result.as_ref().unwrap();
        let breakdown = got.training.expect("training points carry a breakdown");
        assert_eq!(breakdown, expected, "breakdown diverged for {}", p.label());
        // The stacked bars: the four columns sum exactly to the total.
        assert_eq!(
            breakdown.forward
                + breakdown.backward
                + breakdown.input_grad_comm
                + breakdown.weight_grad_comm,
            got.collective_time
        );
        // Normalized over Ring, exactly as the binary printed.
        assert_eq!(
            norm.unwrap(),
            got.collective_time.as_secs_f64() / ring_total
        );
    }
    assert_eq!(normalized[0].unwrap(), 1.0, "ring normalizes to 1.0");
}

/// `scenarios/ablation.toml` ports `ablation_synthesis`: the §IV-F
/// synthesizer-config ablations as `synth.*` sweep axes. Parity checks
/// the grid shape (prefer-cheap x attempts x chunking crossed over
/// homogeneous and heterogeneous fabrics) and replays the binary's
/// `bw_with` measurement path — a direct synthesis under the exact
/// `SynthesizerConfig` each point's axes describe — on the narrow-cut
/// 3D-RFS.
#[test]
fn ablation_scenario_matches_synthesizer_config_measurements() {
    let mut spec = ScenarioSpec::from_file(scenario_path("ablation.toml")).unwrap();
    assert_eq!(
        spec.sweep.topology,
        ["torus:4x4x4", "rfs:2x4x2", "rfs:2x4x8"]
    );
    assert_eq!(spec.sweep.algo, ["tacos"]);
    assert_eq!(spec.sweep.chunks, [1, 4, 16]);
    assert_eq!(spec.sweep.attempts, [1, 8, 64]);
    assert_eq!(spec.sweep.seed, [0x7AC05]);
    assert_eq!(spec.sweep.prefer_cheap_links, [true, false]);
    // The [quick] grid drops the best-of-64 column, nothing else.
    let quick = spec.quick.as_deref().expect("[quick] declared");
    assert_eq!(quick.sweep.attempts, [1, 8]);
    assert_eq!(quick.sweep.chunks, [1, 4, 16]);
    assert_eq!(quick.sweep.prefer_cheap_links, [true, false]);

    // Execute the narrow-cut heterogeneous fabric (the reproduction
    // finding's configuration) at single-attempt across chunking and
    // prioritization, and compare with direct synthesis under the same
    // configs — the binary's bw_with path.
    spec.sweep.topology = vec!["rfs:2x4x2".into()];
    spec.sweep.chunks = vec![1, 4];
    spec.sweep.attempts = vec![1];
    spec.run.cache = None;
    spec.run.quiet = true;
    spec.output = None;
    let summary = run(&spec).unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.records.len(), 2 * 2, "chunks x prefer_cheap");

    let topo = Topology::rfs_3d(2, 4, 2, Time::from_micros(0.5), [200.0, 100.0, 50.0]).unwrap();
    let size = ByteSize::mb(256);
    for record in &summary.records {
        let p = &record.point;
        let coll = Collective::with_chunking(
            tacos_collective::CollectivePattern::AllReduce,
            topo.num_npus(),
            p.chunks,
            size,
        )
        .unwrap();
        let config = SynthesizerConfig::default()
            .with_seed(0x7AC05)
            .with_attempts(1)
            .with_prefer_cheap_links(p.prefer_cheap_links);
        let result = Synthesizer::new(config).synthesize(&topo, &coll).unwrap();
        let got = record.result.as_ref().unwrap();
        assert_eq!(
            got.collective_time,
            result.collective_time(),
            "collective time diverged for {}",
            p.label()
        );
        let bw = size.as_u64() as f64 / result.collective_time().as_secs_f64() / 1e9;
        assert!((got.bandwidth_gbps.unwrap() - bw).abs() < 1e-9);
    }
    // The prioritization axis genuinely changes the synthesis: on/off
    // rows at the same chunking are distinct points with (in general)
    // distinct schedules, and their labels tell them apart.
    let labels: std::collections::HashSet<String> =
        summary.records.iter().map(|r| r.point.label()).collect();
    assert_eq!(labels.len(), summary.records.len());
    assert!(labels.iter().any(|l| l.ends_with("/nopc")));
}
