//! # tacos-scenario
//!
//! The declarative scenario engine: evaluation campaigns as **data**, not
//! code.
//!
//! The TACOS paper evaluates the synthesizer over large grids of
//! (topology × collective × size × chunking × algorithm) points; this
//! repo's `tacos-bench` crate originally encoded each grid as a separate
//! hand-written binary. `tacos-scenario` replaces that pattern with TOML
//! scenario files (see `scenarios/` at the repo root):
//!
//! * [`ScenarioSpec`] — the parsed spec: a topology (any `Topology`
//!   constructor string, or a builder-described heterogeneous network
//!   under `[[topologies]]`), a collective pattern, and sweep axes
//!   (sizes, chunk counts, link specs, seeds, attempts, algorithms);
//! * [`expand`] — deterministic grid expansion: the cartesian product of
//!   the deduplicated axes, in a fixed order, with stable point indices;
//! * [`run`] — a work-stealing sharded runner that executes points across
//!   worker threads, routes every algorithm through
//!   [`tacos_core::AlgorithmCache`] so re-runs and overlapping grids are
//!   incremental, streams finished raw rows to a `<stem>.partial.csv`
//!   so killed runs keep their work, and writes CSV/JSON artifacts via
//!   `tacos-report`;
//! * [`ReportSettings`] — result shaping declared in `[report]`: metric
//!   column selection (per-link traffic stats, percent-of-ideal) and
//!   per-group normalization against a baseline algorithm
//!   (`normalize_over` / `group_by`), the layer that lets the paper's
//!   comparison figures (Fig. 1, Fig. 16, Table V) be plain scenario
//!   files.
//!
//! ```
//! use tacos_scenario::{expand, run, ScenarioSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut spec = ScenarioSpec::from_toml_str(r#"
//!     [scenario]
//!     name = "quick"
//!
//!     [sweep]
//!     topology = ["mesh:2x2"]
//!     collective = ["all-gather"]
//!     size = ["4MB"]
//!     algo = ["tacos", "ring"]
//!
//!     [run]
//!     cache = false
//! "#)?;
//! spec.run.quiet = true;
//! assert_eq!(expand(&spec)?.len(), 2);
//! let summary = run(&spec)?;
//! assert_eq!(summary.failed, 0);
//! # Ok(())
//! # }
//! ```
//!
//! The `tacos` CLI exposes this as `tacos scenario run <file.toml>` and
//! `tacos scenario expand <file.toml>` (a dry run listing the grid).

#![warn(missing_docs)]

mod diff;
mod error;
mod grid;
mod progress;
mod runner;
pub mod spec;
pub mod toml;

pub use diff::{diff_csv_files, diff_csv_texts, DiffReport};
pub use error::ScenarioError;
pub use grid::{expand, ScenarioPoint};
pub use progress::Progress;
pub use runner::{run, PointMetrics, PointRecord, RunSummary, INTERRUPTED, TIMED_OUT};
pub use spec::{
    parse_algo, parse_baseline, parse_pattern, parse_size, parse_topology, select_failed_links,
    AxisValues, CustomLink, CustomTopology, CustomTopologyBody, Evaluation, ExcludeRule, GroupKey,
    LinkAxis, MetricColumn, ReportSettings, RunSettings, ScenarioSpec, SweepAxes, TimelineSettings,
    WithoutLinks, WorkloadSettings,
};
pub use tacos_workload::{Mechanism, Parallelism, SynthMechanism};
