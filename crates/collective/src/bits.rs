//! Word-slice scan kernels shared by [`crate::ChunkSet`] (one row) and
//! [`crate::ChunkMatrix`] (many rows in one flat buffer).
//!
//! Both picking kernels scan **circularly from an arbitrary bit offset**,
//! not just a word offset: the previous word-granular rotation always
//! resolved ties within the starting word toward the lowest set bit
//! (`trailing_zeros`), biasing "random" chunk selection toward low chunk
//! ids whenever several candidates shared a word. Rotating at bit
//! granularity makes every member of the scanned set reachable as the
//! first pick for some starting offset.

//! These kernels decide *which* chunk a matcher probe picks, so their
//! tie-breaking is part of the matching semantics fingerprinted by
//! `MATCHER_VERSION` (tacos-core's cache module): changing scan order
//! here requires bumping that constant.

/// Picks the first set bit of `a & b`, scanning circularly from
/// `start_bit`. Slices must have equal length.
pub(crate) fn pick_and(a: &[u64], b: &[u64], start_bit: usize) -> Option<u32> {
    let n = a.len();
    if n == 0 {
        return None;
    }
    let s = start_bit % (n * 64);
    let (w0, b0) = (s / 64, (s % 64) as u32);
    let head = u64::MAX << b0; // bits >= b0 within the starting word
    let and = (a[w0] & b[w0]) & head;
    if and != 0 {
        return Some((w0 * 64) as u32 + and.trailing_zeros());
    }
    for i in 1..n {
        let w = (w0 + i) % n;
        let and = a[w] & b[w];
        if and != 0 {
            return Some((w * 64) as u32 + and.trailing_zeros());
        }
    }
    let and = (a[w0] & b[w0]) & !head;
    (and != 0).then(|| (w0 * 64) as u32 + and.trailing_zeros())
}

/// Picks the first bit of `a & !minus` satisfying `pred`, scanning
/// circularly from `start_bit`. Slices must have equal length.
pub(crate) fn pick_diff_where(
    a: &[u64],
    minus: &[u64],
    start_bit: usize,
    mut pred: impl FnMut(u32) -> bool,
) -> Option<u32> {
    let n = a.len();
    if n == 0 {
        return None;
    }
    let s = start_bit % (n * 64);
    let (w0, b0) = (s / 64, (s % 64) as u32);
    let head = u64::MAX << b0; // bits >= b0 within the starting word
    if let Some(bit) = first_where((a[w0] & !minus[w0]) & head, w0, &mut pred) {
        return Some(bit);
    }
    for i in 1..n {
        let w = (w0 + i) % n;
        if let Some(bit) = first_where(a[w] & !minus[w], w, &mut pred) {
            return Some(bit);
        }
    }
    first_where((a[w0] & !minus[w0]) & !head, w0, &mut pred)
}

/// Lowest set bit of `word` (at word index `w`) passing `pred`, as a
/// global bit index.
fn first_where(mut word: u64, w: usize, pred: &mut impl FnMut(u32) -> bool) -> Option<u32> {
    while word != 0 {
        let b = word.trailing_zeros();
        word &= word - 1;
        let bit = (w * 64) as u32 + b;
        if pred(bit) {
            return Some(bit);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_rotation_reaches_every_member() {
        // Two candidates in the same word: word-granular rotation could
        // only ever pick bit 3 first; bit-granular rotation must reach
        // bit 40 when starting past 3.
        let a = [(1u64 << 3) | (1u64 << 40)];
        let b = [u64::MAX];
        assert_eq!(pick_and(&a, &b, 0), Some(3));
        assert_eq!(pick_and(&a, &b, 4), Some(40));
        assert_eq!(pick_and(&a, &b, 41), Some(3)); // wraps
    }

    #[test]
    fn wrap_revisits_low_bits_of_start_word() {
        let a = [1u64 << 2, 0];
        let b = [u64::MAX, u64::MAX];
        // Start in word 0 past bit 2: scan word 1, then wrap to bit 2.
        assert_eq!(pick_and(&a, &b, 10), Some(2));
    }

    #[test]
    fn diff_where_respects_pred_and_minus() {
        let a = [0b1111u64];
        let minus = [0b0001u64];
        assert_eq!(pick_diff_where(&a, &minus, 0, |_| true), Some(1));
        assert_eq!(pick_diff_where(&a, &minus, 0, |b| b >= 3), Some(3));
        assert_eq!(pick_diff_where(&a, &minus, 2, |_| true), Some(2));
        assert_eq!(pick_diff_where(&a, &minus, 0, |_| false), None);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(pick_and(&[], &[], 7), None);
        assert_eq!(pick_diff_where(&[], &[], 7, |_| true), None);
    }
}
