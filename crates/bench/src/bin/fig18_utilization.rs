//! **Fig. 18** — Network link utilization of TACOS-synthesized vs. Ring
//! algorithms during a 1 GB All-Reduce on a 3D Torus (5×5×5, symmetric), a
//! 2D Mesh (10×10, asymmetric), and a 3D Hypercube grid (5×5×5,
//! asymmetric), with efficiency against the theoretical ideal.
//!
//! Expected shape: TACOS saturates the symmetric torus at ~100%
//! utilization; on the asymmetric grids utilization ramps at the start and
//! tail (border NPUs cannot inject/eject simultaneously) but stays maximal
//! in between; Ring leaves whole regions idle (paper: TACOS 98.4% of ideal
//! on average).

use tacos_baselines::BaselineKind;
use tacos_bench::experiments::{
    default_spec, run_baseline, run_ideal, run_tacos, write_results_csv,
};
use tacos_collective::Collective;
use tacos_report::sparkline;
use tacos_topology::{ByteSize, Topology};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topologies: Vec<Topology> = if quick {
        vec![
            Topology::torus_3d(3, 3, 3, default_spec()).unwrap(),
            Topology::mesh_2d(5, 5, default_spec()).unwrap(),
            Topology::hypercube_3d(3, 3, 3, default_spec()).unwrap(),
        ]
    } else {
        vec![
            Topology::torus_3d(5, 5, 5, default_spec()).unwrap(),
            Topology::mesh_2d(10, 10, default_spec()).unwrap(),
            Topology::hypercube_3d(5, 5, 5, default_spec()).unwrap(),
        ]
    };
    let size = ByteSize::gb(1);

    println!("=== Fig. 18: utilization during All-Reduce, TACOS vs Ring ===\n");
    let mut csv = vec![vec![
        "topology".to_string(),
        "algorithm".into(),
        "collective_time_ps".into(),
        "avg_utilization".into(),
        "efficiency_vs_ideal".into(),
    ]];
    for topo in &topologies {
        let n = topo.num_npus();
        let coll = Collective::all_reduce(n, size).unwrap();
        let chunked = tacos_bench::experiments::all_reduce_chunked(n, size, 4);
        let ideal = run_ideal(topo, &coll);
        let tacos = run_tacos(topo, &chunked, 4, 42);
        let ring = run_baseline(topo, &coll, BaselineKind::Ring);
        for m in [&tacos, &ring] {
            let report = m.report.as_ref().unwrap();
            let tl = report.utilization_timeline(60);
            let eff = ideal.time.as_secs_f64() / m.time.as_secs_f64();
            println!(
                "{:<20} {:<6} |{}| avg {:>5.1}%  vs ideal {:>5.1}%",
                topo.name(),
                m.name,
                sparkline(&tl),
                report.average_utilization() * 100.0,
                eff * 100.0
            );
            csv.push(vec![
                topo.name().into(),
                m.name.clone(),
                m.time.as_ps().to_string(),
                format!("{}", report.average_utilization()),
                format!("{eff}"),
            ]);
        }
        println!();
    }
    write_results_csv("fig18_utilization.csv", &csv);
}
