//! Counting-allocator proof that the matching hot path is allocation-free.
//!
//! `run_round` is internal, so the assertion is phrased through the public
//! API: with transfer recording disabled and a warmed
//! [`SynthesisScratch`], a synthesis's heap-allocation count must not
//! depend on how many matching rounds it executes. Two All-Gathers on the
//! same unidirectional ring differ only in chunking factor — 4 vs 32
//! chunks per NPU, i.e. ~8x the rounds and probes — so equal allocation
//! counts mean the per-round / per-probe cost is exactly zero
//! allocations; only per-synthesis setup (pre/postcondition sets, the
//! result struct) touches the heap.
//!
//! The recording path gets the analogous bound: with recording enabled,
//! dependency lists live inline in each transfer (no per-transfer heap),
//! so allocations grow with the builder's amortized vec doublings —
//! logarithmic in transfer count — not with transfers or rounds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use tacos_collective::{Collective, CollectivePattern};
use tacos_core::{SynthesisScratch, Synthesizer, SynthesizerConfig};
use tacos_topology::{Bandwidth, ByteSize, LinkSpec, RingOrientation, Time, Topology};

thread_local! {
    // Per-thread, so allocations from other harness threads (libtest
    // spawns one per test and schedules them under load) can never leak
    // into a counted window. Const-initialized: reading it from inside
    // the allocator must not itself allocate.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn counting() -> bool {
    // `try_with` because threads allocate during TLS teardown, after
    // this key may already be destroyed.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// The counters are process-global, so the tests in this binary must not
/// interleave: each takes this lock for its whole body.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct CountingAllocator;

// SAFETY: pure pass-through to `System`, which upholds GlobalAlloc's
// contract; the added atomic counter bumps neither allocate nor unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System.alloc` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's ptr/layout pair, which the contract
    // guarantees came from a matching `alloc` on this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards the caller's ptr/layout/new_size to `System`
    // unchanged, preserving the realloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let out = f();
    COUNTING.with(|c| c.set(false));
    (out, ALLOCS.load(Ordering::SeqCst))
}

fn all_gather(n: usize, chunks_per_npu: usize) -> Collective {
    Collective::with_chunking(
        CollectivePattern::AllGather,
        n,
        chunks_per_npu,
        ByteSize::mb((n * chunks_per_npu) as u64),
    )
    .unwrap()
}

/// Synthesis allocation count is independent of the round count once the
/// scratch is warm: every per-round buffer is reused.
#[test]
fn run_round_makes_zero_per_round_allocations() {
    let _serial = SERIAL.lock().unwrap();
    let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::ring(8, spec, RingOrientation::Unidirectional).unwrap();
    let synth = Synthesizer::new(SynthesizerConfig::default().with_record_transfers(false));

    let measure = |chunks_per_npu: usize| -> (usize, u64) {
        let coll = all_gather(8, chunks_per_npu);
        let mut scratch = SynthesisScratch::new();
        // Warm the scratch: grows every buffer to this problem's shape.
        let warm = synth
            .synthesize_seeded_with(&topo, &coll, 7, &mut scratch)
            .unwrap();
        let (result, allocs) = counted(|| {
            synth
                .synthesize_seeded_with(&topo, &coll, 7, &mut scratch)
                .unwrap()
        });
        assert_eq!(result.collective_time(), warm.collective_time());
        assert!(result.rounds() > 1);
        (result.rounds(), allocs)
    };

    let (rounds_small, allocs_small) = measure(4);
    let (rounds_large, allocs_large) = measure(32);
    assert!(
        rounds_large >= rounds_small * 4,
        "expected the 32-chunk synthesis to run many more rounds \
         ({rounds_small} vs {rounds_large})"
    );
    assert_eq!(
        allocs_small, allocs_large,
        "allocation count must not scale with rounds: \
         {allocs_small} allocs over {rounds_small} rounds vs \
         {allocs_large} allocs over {rounds_large} rounds"
    );
}

/// With transfer recording enabled, the only heap traffic beyond
/// per-synthesis setup is the builder's amortized transfer-vec growth:
/// dependency lists are stored inline in the `Transfer`, so scaling the
/// same problem from ~224 to ~1792 recorded transfers (and ~8x the
/// rounds) must add far fewer allocations than it adds transfers. Before
/// the inline dep-list, every forwarded transfer allocated its one-entry
/// deps `Vec`, which this bound catches.
#[test]
fn recording_path_allocations_do_not_scale_with_transfers() {
    let _serial = SERIAL.lock().unwrap();
    let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::ring(8, spec, RingOrientation::Unidirectional).unwrap();
    let synth = Synthesizer::new(SynthesizerConfig::default()); // recording on

    let measure = |chunks_per_npu: usize| -> (u64, u64) {
        let coll = all_gather(8, chunks_per_npu);
        let mut scratch = SynthesisScratch::new();
        synth
            .synthesize_seeded_with(&topo, &coll, 7, &mut scratch)
            .unwrap();
        let (result, allocs) = counted(|| {
            synth
                .synthesize_seeded_with(&topo, &coll, 7, &mut scratch)
                .unwrap()
        });
        assert!(!result.algorithm().is_empty());
        (result.num_transfers(), allocs)
    };

    let (t_small, a_small) = measure(4);
    let (t_large, a_large) = measure(32);
    assert!(
        t_large >= t_small * 4,
        "expected the 32-chunk synthesis to record many more transfers \
         ({t_small} vs {t_large})"
    );
    let added_transfers = t_large - t_small;
    let added_allocs = a_large.saturating_sub(a_small);
    assert!(
        added_allocs < added_transfers / 8,
        "recording {added_transfers} extra transfers cost {added_allocs} \
         extra allocations — the per-transfer recording path is \
         allocating ({a_small} allocs @ {t_small} transfers, \
         {a_large} allocs @ {t_large} transfers)"
    );
}

/// Reusing a warm scratch also eliminates the per-attempt setup
/// allocations of the big buffers: a warm re-synthesis allocates strictly
/// less than a cold one.
#[test]
fn warm_scratch_allocates_less_than_cold() {
    let _serial = SERIAL.lock().unwrap();
    let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
    let topo = Topology::mesh_2d(3, 3, spec).unwrap();
    let coll = all_gather(9, 4);
    let synth = Synthesizer::new(SynthesizerConfig::default().with_record_transfers(false));

    let (_, cold) = counted(|| {
        synth.synthesize_seeded(&topo, &coll, 3).unwrap() // fresh scratch inside
    });
    let mut scratch = SynthesisScratch::new();
    synth
        .synthesize_seeded_with(&topo, &coll, 3, &mut scratch)
        .unwrap();
    let (_, warm) = counted(|| {
        synth
            .synthesize_seeded_with(&topo, &coll, 3, &mut scratch)
            .unwrap()
    });
    assert!(
        warm < cold,
        "warm synthesis ({warm} allocs) should allocate less than cold ({cold})"
    );
}
