//! End-to-end training-iteration evaluation (paper §VI-D, Figs. 20–21).
//!
//! For data-parallel models, gradient communication is exposed at the end
//! of each iteration (paper: "communication becomes exposed at the end of
//! each training iteration"), so
//! `iteration = forward + backward + exposed collectives`, where each
//! collective's time comes from the congestion-aware simulator running the
//! chosen algorithm (or from the theoretical ideal bound).

use std::fmt;

use tacos_baselines::{BaselineAlgorithm, BaselineKind, IdealBound};
use tacos_collective::{Collective, CollectivePattern};
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_sim::Simulator;
use tacos_topology::{ByteSize, Time, Topology};

use crate::error::WorkloadError;
use crate::models::Workload;

/// How gradient collectives are executed.
#[derive(Debug, Clone)]
pub enum CommMechanism {
    /// One of the baseline algorithms.
    Baseline(BaselineKind),
    /// A TACOS-synthesized algorithm.
    Tacos(SynthesizerConfig),
    /// The theoretical ideal bound (no algorithm; lower bound on time).
    Ideal,
}

impl CommMechanism {
    /// Display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            CommMechanism::Baseline(kind) => kind.name(),
            CommMechanism::Tacos(_) => "tacos",
            CommMechanism::Ideal => "ideal",
        }
    }
}

/// Per-iteration timing breakdown (the bars of paper Fig. 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingReport {
    /// Forward-pass compute.
    pub forward: Time,
    /// Backward-pass compute.
    pub backward: Time,
    /// Exposed weight-gradient collective time.
    pub weight_grad_comm: Time,
    /// Exposed input-gradient collective time (zero for pure DP).
    pub input_grad_comm: Time,
}

impl TrainingReport {
    /// Total iteration time.
    pub fn total(&self) -> Time {
        self.forward + self.backward + self.weight_grad_comm + self.input_grad_comm
    }

    /// Total exposed communication.
    pub fn comm(&self) -> Time {
        self.weight_grad_comm + self.input_grad_comm
    }

    /// Total compute.
    pub fn compute(&self) -> Time {
        self.forward + self.backward
    }
}

impl fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fwd {} + bwd {} + wg {} + ig {} = {}",
            self.forward,
            self.backward,
            self.weight_grad_comm,
            self.input_grad_comm,
            self.total()
        )
    }
}

/// Evaluates training iterations of a [`Workload`] on a topology under a
/// chosen communication mechanism.
///
/// ```no_run
/// use tacos_workload::{CommMechanism, TrainingEvaluator, Workload};
/// use tacos_baselines::BaselineKind;
/// use tacos_topology::{Time, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = Topology::rfs_3d(2, 4, 8, Time::from_micros(0.5), [200.0, 100.0, 50.0])?;
/// let eval = TrainingEvaluator::new(&topo);
/// let report = eval.evaluate(&Workload::gnmt(), &CommMechanism::Baseline(BaselineKind::Ring))?;
/// println!("iteration: {}", report.total());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrainingEvaluator<'a> {
    topo: &'a Topology,
    chunks: usize,
}

impl<'a> TrainingEvaluator<'a> {
    /// Creates an evaluator for `topo` with the default chunking factor
    /// (4, matching the paper's "TACOS (4 chunks)").
    pub fn new(topo: &'a Topology) -> Self {
        TrainingEvaluator { topo, chunks: 4 }
    }

    /// Overrides the chunking factor used for synthesized collectives.
    #[must_use]
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }

    /// Time for one All-Reduce of `size` under `mechanism`.
    ///
    /// # Errors
    /// Propagates synthesis / generation / simulation failures.
    pub fn all_reduce_time(
        &self,
        size: ByteSize,
        mechanism: &CommMechanism,
    ) -> Result<Time, WorkloadError> {
        let n = self.topo.num_npus();
        match mechanism {
            CommMechanism::Ideal => {
                let ideal = IdealBound::new(self.topo);
                Ok(ideal.collective_time(CollectivePattern::AllReduce, size))
            }
            CommMechanism::Baseline(kind) => {
                let coll = Collective::all_reduce(n, size)?;
                let algo = BaselineAlgorithm::new(kind.clone()).generate(self.topo, &coll)?;
                let report = Simulator::new().simulate(self.topo, &algo)?;
                Ok(report.collective_time())
            }
            CommMechanism::Tacos(config) => {
                let coll =
                    Collective::with_chunking(CollectivePattern::AllReduce, n, self.chunks, size)?;
                let result = Synthesizer::new(config.clone()).synthesize(self.topo, &coll)?;
                Ok(result.collective_time())
            }
        }
    }

    /// Evaluates one training iteration of `workload`.
    ///
    /// # Errors
    /// Propagates synthesis / generation / simulation failures.
    pub fn evaluate(
        &self,
        workload: &Workload,
        mechanism: &CommMechanism,
    ) -> Result<TrainingReport, WorkloadError> {
        let weight_grad_comm = self.all_reduce_time(workload.weight_grad(), mechanism)?;
        let input_grad_comm = match workload.input_grad() {
            Some(size) => self.all_reduce_time(size, mechanism)?,
            None => Time::ZERO,
        };
        Ok(TrainingReport {
            forward: workload.forward(),
            backward: workload.backward(),
            weight_grad_comm,
            input_grad_comm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_topology::{Bandwidth, LinkSpec};

    fn small_torus() -> Topology {
        let spec = LinkSpec::new(Time::from_micros(0.7), Bandwidth::gbps(25.0));
        Topology::torus_3d(2, 2, 2, spec).unwrap()
    }

    #[test]
    fn ideal_is_fastest() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let w = Workload::resnet50();
        let ideal = eval.evaluate(&w, &CommMechanism::Ideal).unwrap();
        let ring = eval
            .evaluate(&w, &CommMechanism::Baseline(BaselineKind::Ring))
            .unwrap();
        let tacos = eval
            .evaluate(&w, &CommMechanism::Tacos(SynthesizerConfig::default()))
            .unwrap();
        assert!(ideal.comm() <= tacos.comm());
        assert!(ideal.comm() <= ring.comm());
        assert!(ideal.total() < ring.total());
    }

    #[test]
    fn tacos_beats_ring_on_torus() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let w = Workload::resnet50();
        let ring = eval
            .evaluate(&w, &CommMechanism::Baseline(BaselineKind::Ring))
            .unwrap();
        let tacos = eval
            .evaluate(
                &w,
                &CommMechanism::Tacos(SynthesizerConfig::default().with_attempts(4)),
            )
            .unwrap();
        assert!(
            tacos.comm() <= ring.comm(),
            "tacos {} vs ring {}",
            tacos.comm(),
            ring.comm()
        );
        // Compute is mechanism-independent.
        assert_eq!(tacos.compute(), ring.compute());
    }

    #[test]
    fn breakdown_accounts_input_grads() {
        let topo = small_torus();
        let eval = TrainingEvaluator::new(&topo);
        let msft = eval
            .evaluate(&Workload::msft_1t(), &CommMechanism::Ideal)
            .unwrap();
        assert!(msft.input_grad_comm > Time::ZERO);
        assert_eq!(
            msft.total(),
            msft.forward + msft.backward + msft.weight_grad_comm + msft.input_grad_comm
        );
        let resnet = eval
            .evaluate(&Workload::resnet50(), &CommMechanism::Ideal)
            .unwrap();
        assert_eq!(resnet.input_grad_comm, Time::ZERO);
    }

    #[test]
    fn mechanism_names() {
        assert_eq!(CommMechanism::Ideal.name(), "ideal");
        assert_eq!(CommMechanism::Baseline(BaselineKind::Ring).name(), "ring");
        assert_eq!(
            CommMechanism::Tacos(SynthesizerConfig::default()).name(),
            "tacos"
        );
    }
}
