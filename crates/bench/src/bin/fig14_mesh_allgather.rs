//! **Fig. 14** — A TACOS-synthesized All-Gather on a homogeneous 3×3 2D
//! Mesh, shown step by step over the TEN. The synthesized algorithm avoids
//! link contention by construction; utilization ramps up as chunks spread
//! (border NPUs cannot inject to everyone at t=0 — the asymmetry effect
//! the paper points out in §VI-B.6).

use tacos_collective::Collective;
use tacos_core::{Synthesizer, SynthesizerConfig};
use tacos_sim::Simulator;
use tacos_ten::TimeExpandedNetwork;
use tacos_topology::{ByteSize, LinkId, Topology};

use tacos_bench::experiments::default_spec;

fn main() {
    let topo = Topology::mesh_2d(3, 3, default_spec()).unwrap();
    let coll = Collective::all_gather(9, ByteSize::mb(9)).unwrap();
    let synth = Synthesizer::new(SynthesizerConfig::default().with_seed(7).with_attempts(16));
    let result = synth.synthesize(&topo, &coll).unwrap();
    let algo = result.algorithm();
    println!("=== Fig. 14: All-Gather on a 3x3 2D Mesh ===\n");
    println!(
        "{} transfers, {} time spans, collective time {}",
        algo.len(),
        result.rounds(),
        result.collective_time()
    );
    algo.validate_contention_free()
        .expect("contention-free by construction");

    let ten = TimeExpandedNetwork::represent(&topo, algo).unwrap();
    for step in 0..ten.steps() {
        println!(
            "\n  time span t={step} (utilization {:.0}%):",
            ten.step_utilization(step) * 100.0
        );
        for l in 0..topo.num_links() {
            if let Some(chunk) = ten.occupant(step, LinkId::new(l as u32)) {
                let (src, dst) = ten.endpoints(LinkId::new(l as u32));
                let (sr, sc) = (src.index() / 3, src.index() % 3);
                let (dr, dc) = (dst.index() / 3, dst.index() % 3);
                println!("    chunk {chunk} : ({sr},{sc}) -> ({dr},{dc})");
            }
        }
    }

    let report = Simulator::new().simulate(&topo, algo).unwrap();
    assert_eq!(report.collective_time(), result.collective_time());
    println!(
        "\nSimulator confirms the planned time exactly ({}); average link\n\
         utilization {:.1}%.",
        report.collective_time(),
        report.average_utilization() * 100.0
    );
}
