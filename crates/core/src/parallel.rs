//! Best-of-N parallel synthesis.
//!
//! The paper's large syntheses run with 64 parallel threads (§VI-C):
//! because matching is randomized, independent seeds explore different
//! algorithms, and the best (smallest collective time) is kept. Attempts
//! are distributed over `std::thread::scope` workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

use tacos_collective::Collective;
use tacos_topology::Topology;

use crate::error::SynthesisError;
use crate::scratch::SynthesisScratch;
use crate::synthesis::{SynthesisResult, Synthesizer};

/// Runs `synth.config().attempts()` independent seeded syntheses and
/// returns the one with the smallest collective time.
///
/// Seeds are `seed, seed+1, …` so results are reproducible regardless of
/// thread interleaving.
///
/// # Errors
/// Returns the first synthesis error encountered (all seeds fail the same
/// way: errors depend only on topology/collective shape).
pub(crate) fn synthesize_best_of(
    synth: &Synthesizer,
    topo: &Topology,
    collective: &Collective,
) -> Result<SynthesisResult, SynthesisError> {
    let attempts = synth.config().attempts();
    let base_seed = synth.config().seed();
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(attempts);
    let next = AtomicUsize::new(0);
    // Keyed by (collective_time, attempt_index): ties on time are broken
    // toward the lower attempt index so the winner — and therefore the
    // returned *schedule* — does not depend on thread interleaving.
    let best: Mutex<Option<(usize, SynthesisResult)>> = Mutex::new(None);
    let error: Mutex<Option<SynthesisError>> = Mutex::new(None);

    thread::scope(|scope| {
        for _ in 0..workers {
            // Each worker reuses one scratch across every attempt it
            // claims: the matching matrix, TEN, and event buffers only
            // depend on the problem shape, which is fixed here.
            scope.spawn(|| {
                let mut scratch = SynthesisScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= attempts {
                        break;
                    }
                    let seed = base_seed.wrapping_add(i as u64);
                    match synth.synthesize_seeded_with(topo, collective, seed, &mut scratch) {
                        Ok(result) => {
                            let mut guard = best.lock().unwrap_or_else(PoisonError::into_inner);
                            let better = guard.as_ref().is_none_or(|(best_i, b)| {
                                (result.collective_time(), i) < (b.collective_time(), *best_i)
                            });
                            if better {
                                *guard = Some((i, result));
                            }
                        }
                        Err(e) => {
                            let mut guard = error.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.get_or_insert(e);
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let winner = best.into_inner().unwrap_or_else(PoisonError::into_inner);
    match winner {
        Some((_, result)) => Ok(result),
        // `attempts` is clamped to >= 1 by SynthesizerConfig, and every
        // attempt either records a result or records an error (handled
        // above), so an empty `best` cannot be reached from safe callers.
        None => Err(SynthesisError::Internal(
            "best-of-N synthesis produced neither a result nor an error".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthesizerConfig;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time};

    fn mesh() -> Topology {
        let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
        Topology::mesh_2d(3, 3, spec).unwrap()
    }

    #[test]
    fn best_of_is_no_worse_than_single() {
        let topo = mesh();
        let coll = Collective::all_gather(9, ByteSize::mb(9)).unwrap();
        let single = Synthesizer::new(SynthesizerConfig::default().with_seed(100));
        let multi = Synthesizer::new(SynthesizerConfig::default().with_seed(100).with_attempts(8));
        let t1 = single.synthesize(&topo, &coll).unwrap().collective_time();
        let t8 = multi.synthesize(&topo, &coll).unwrap().collective_time();
        assert!(t8 <= t1, "best-of-8 ({t8}) worse than single ({t1})");
    }

    #[test]
    fn best_of_is_deterministic() {
        let topo = mesh();
        let coll = Collective::all_gather(9, ByteSize::mb(9)).unwrap();
        let synth = Synthesizer::new(SynthesizerConfig::default().with_seed(7).with_attempts(4));
        let a = synth.synthesize(&topo, &coll).unwrap();
        let b = synth.synthesize(&topo, &coll).unwrap();
        assert_eq!(a.collective_time(), b.collective_time());
        assert_eq!(a.seed(), b.seed());
        // Ties on collective time break toward the lower attempt index,
        // so even the schedule is interleaving-independent.
        assert_eq!(a.algorithm(), b.algorithm());
    }

    #[test]
    fn errors_propagate() {
        // Not strongly connected: 3 NPUs, one unreachable.
        let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
        let mut b = tacos_topology::TopologyBuilder::new("disc");
        b.npus(3);
        b.bidi_link(
            tacos_topology::NpuId::new(0),
            tacos_topology::NpuId::new(1),
            spec,
        );
        let topo = b.build().unwrap();
        let coll = Collective::all_gather(3, ByteSize::mb(3)).unwrap();
        let synth = Synthesizer::new(SynthesizerConfig::default().with_attempts(4));
        assert!(matches!(
            synth.synthesize(&topo, &coll),
            Err(SynthesisError::Stuck { .. })
        ));
    }
}
