//! Clean fixture for the panic-path audit: the only panic site carries a
//! well-formed suppression whose reason itself contains parentheses.

pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().copied();
    head.unwrap() // lint: allow(panic, "fixture: head is Some by xs.first() check in caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
