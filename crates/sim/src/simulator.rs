//! The congestion-aware analytical network simulator (paper §V-C).
//!
//! Models exactly what the paper's ASTRA-sim backend models, at first
//! order: every link has a message queue and processes **one message at a
//! time** (`α + β·size` each), first-come-first-served; contending messages
//! therefore serialize — the mechanism behind the oversubscription heat
//! maps of Figs. 1 and 15b. Transfers between NPUs that share no physical
//! link are routed over static α–β-shortest paths (store-and-forward per
//! hop), which is how topology-unaware baselines like Direct-on-a-Ring pay
//! for their assumptions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tacos_collective::algorithm::CollectiveAlgorithm;
use tacos_topology::routing::{route_path, RoutingTable};
use tacos_topology::{LinkId, Time, Topology};

use crate::error::SimError;
use crate::report::{BusyInterval, SimReport};

/// How multi-hop routed messages pay the per-message latency α.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteModel {
    /// α is charged once (on the first hop); later hops cost only the
    /// serialization delay β·size. This matches the paper's analytical
    /// backend, where Direct on a 128-NPU Ring *wins* for 1 KB collectives
    /// (Fig. 2b) — long paths are latency-cheap but still occupy every
    /// link they cross.
    #[default]
    CutThrough,
    /// Every hop pays the full `α + β·size` (store-and-forward).
    StoreAndForward,
}

/// Simulator options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    respect_planned_order: bool,
    record_intervals: bool,
    route_model: RouteModel,
}

impl SimConfig {
    /// When `true` (default), messages contending for a link are served in
    /// planned-start order if the algorithm carries a schedule; this makes
    /// replaying a TACOS schedule reproduce its planned times exactly.
    /// Unscheduled (baseline) algorithms always use FCFS.
    pub fn respect_planned_order(&self) -> bool {
        self.respect_planned_order
    }

    /// Whether per-message busy intervals are recorded (needed for
    /// utilization timelines; costs memory on very large runs).
    pub fn record_intervals(&self) -> bool {
        self.record_intervals
    }

    /// Returns the config with planned-order service toggled.
    #[must_use]
    pub fn with_respect_planned_order(mut self, on: bool) -> Self {
        self.respect_planned_order = on;
        self
    }

    /// Returns the config with busy-interval recording toggled.
    #[must_use]
    pub fn with_record_intervals(mut self, on: bool) -> Self {
        self.record_intervals = on;
        self
    }

    /// How routed multi-hop messages pay α.
    pub fn route_model(&self) -> RouteModel {
        self.route_model
    }

    /// Returns the config with a different multi-hop cost model.
    #[must_use]
    pub fn with_route_model(mut self, model: RouteModel) -> Self {
        self.route_model = model;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            respect_planned_order: true,
            record_intervals: true,
            route_model: RouteModel::default(),
        }
    }
}

/// Discrete-event, link-granularity network simulator.
///
/// ```
/// use tacos_sim::Simulator;
/// use tacos_core::{Synthesizer, SynthesizerConfig};
/// use tacos_collective::Collective;
/// use tacos_topology::{Bandwidth, ByteSize, LinkSpec, Time, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0));
/// let mesh = Topology::mesh_2d(3, 3, spec)?;
/// let coll = Collective::all_gather(9, ByteSize::mb(9))?;
/// let algo = Synthesizer::default().synthesize(&mesh, &coll)?.into_algorithm();
/// let report = Simulator::new().simulate(&mesh, &algo)?;
/// // Simulating a TACOS schedule reproduces its planned time exactly.
/// assert_eq!(report.collective_time(), algo.collective_time());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
}

/// One hop of one transfer, queued at a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Message {
    transfer: u32,
    hop: u32,
}

/// Queue priority: planned start (or MAX), ready time, sequence.
type Priority = (u64, u64, u64);

/// Simulation events: a message becomes eligible at a link, or a link
/// finishes transmitting a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Release(Message),
    Complete(Message, LinkId),
}

#[derive(Debug)]
struct LinkState {
    busy_until: Time,
    pending: BinaryHeap<Reverse<(Priority, Message)>>,
}

impl Simulator {
    /// A simulator with default configuration.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// A simulator with explicit configuration.
    pub fn with_config(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates `algo` on `topo` and reports completion time, per-link
    /// traffic, and utilization.
    ///
    /// # Errors
    /// * [`SimError::NpuCountMismatch`] if the algorithm was generated for
    ///   a different NPU count.
    /// * [`SimError::Unroutable`] if an unscheduled transfer's destination
    ///   is unreachable.
    /// * [`SimError::BadLink`] if a scheduled transfer's link does not
    ///   match its endpoints.
    pub fn simulate(
        &self,
        topo: &Topology,
        algo: &CollectiveAlgorithm,
    ) -> Result<SimReport, SimError> {
        if topo.num_npus() != algo.num_npus() {
            return Err(SimError::NpuCountMismatch {
                topology: topo.num_npus(),
                algorithm: algo.num_npus(),
            });
        }
        let chunk_size = algo.chunk_size();
        let transfers = algo.transfers();

        // Resolve each transfer into its hop sequence.
        let needs_routing = transfers.iter().any(|t| t.link().is_none());
        let table = needs_routing.then(|| RoutingTable::new(topo, chunk_size));
        let mut hops: Vec<Vec<LinkId>> = Vec::with_capacity(transfers.len());
        for (i, t) in transfers.iter().enumerate() {
            match t.link() {
                Some(link_id) => {
                    if link_id.index() >= topo.num_links() {
                        return Err(SimError::BadLink {
                            transfer: i,
                            reason: format!("link {link_id} does not exist"),
                        });
                    }
                    let link = topo.link(link_id);
                    if link.src() != t.src() || link.dst() != t.dst() {
                        return Err(SimError::BadLink {
                            transfer: i,
                            reason: format!(
                                "endpoints {} -> {} do not match link {} -> {}",
                                t.src(),
                                t.dst(),
                                link.src(),
                                link.dst()
                            ),
                        });
                    }
                    hops.push(vec![link_id]);
                }
                None => {
                    let table = table.as_ref().expect("built when needed");
                    let path =
                        route_path(topo, table, t.src(), t.dst()).ok_or(SimError::Unroutable {
                            src: t.src().index(),
                            dst: t.dst().index(),
                        })?;
                    debug_assert!(!path.is_empty());
                    hops.push(path);
                }
            }
        }

        // Dependency bookkeeping.
        let mut deps_remaining: Vec<u32> =
            transfers.iter().map(|t| t.deps().len() as u32).collect();
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); transfers.len()];
        for (i, t) in transfers.iter().enumerate() {
            for d in t.deps() {
                dependents[d.index()].push(i as u32);
            }
        }

        // Planned starts double as release times and as queue priorities:
        // a scheduled transfer is never served before (or out of order
        // with) its plan, which makes replaying a contention-free schedule
        // exact. Unscheduled transfers run eagerly, FCFS.
        let planned: Vec<Option<Time>> = transfers
            .iter()
            .map(|t| {
                if self.config.respect_planned_order {
                    t.start()
                } else {
                    None
                }
            })
            .collect();

        let mut clock = Time::ZERO;
        let mut completed_transfers = 0usize;

        struct EngineState {
            links: Vec<LinkState>,
            link_bytes: Vec<u64>,
            link_busy: Vec<Time>,
            intervals: Vec<BusyInterval>,
            events: BinaryHeap<Reverse<(Time, u64, Event)>>,
            seq: u64,
            messages: u64,
            record_intervals: bool,
        }

        impl EngineState {
            /// Serve the highest-priority queued message if the link is
            /// idle.
            fn try_start(
                &mut self,
                link_id: LinkId,
                now: Time,
                cost_of: impl Fn(Message, LinkId) -> (Time, u64),
            ) {
                let ls = &mut self.links[link_id.index()];
                if ls.busy_until <= now {
                    if let Some(Reverse((_, msg))) = ls.pending.pop() {
                        let (cost, bytes) = cost_of(msg, link_id);
                        let done = now + cost;
                        ls.busy_until = done;
                        self.link_busy[link_id.index()] += cost;
                        if self.record_intervals {
                            self.intervals.push(BusyInterval {
                                link: link_id,
                                start: now,
                                duration: cost,
                                bytes,
                            });
                        }
                        self.seq += 1;
                        self.events
                            .push(Reverse((done, self.seq, Event::Complete(msg, link_id))));
                        self.messages += 1;
                    }
                }
            }

            fn push_event(&mut self, time: Time, event: Event) {
                self.seq += 1;
                self.events.push(Reverse((time, self.seq, event)));
            }
        }

        let release_time = |msg: Message, ready: Time| -> Time {
            if msg.hop == 0 {
                planned[msg.transfer as usize].map_or(ready, |p| p.max(ready))
            } else {
                ready
            }
        };

        // Per-message transmission cost: α + β·(count · chunk_size); under
        // cut-through routing, hops after the first skip α.
        let cut_through = self.config.route_model == RouteModel::CutThrough;
        let cost_of = |msg: Message, link_id: LinkId| -> (Time, u64) {
            let link = topo.link(link_id);
            let payload = transfers[msg.transfer as usize].payload(chunk_size);
            let full = link.cost(payload);
            let cost = if cut_through && msg.hop > 0 {
                full - link.spec().alpha()
            } else {
                full
            };
            (cost, payload.as_u64())
        };

        let mut engine = EngineState {
            links: (0..topo.num_links())
                .map(|_| LinkState {
                    busy_until: Time::ZERO,
                    pending: BinaryHeap::new(),
                })
                .collect(),
            link_bytes: vec![0u64; topo.num_links()],
            link_busy: vec![Time::ZERO; topo.num_links()],
            intervals: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            messages: 0,
            record_intervals: self.config.record_intervals,
        };

        // Kick off every transfer whose dependencies are already satisfied.
        for (i, &remaining) in deps_remaining.iter().enumerate() {
            if remaining == 0 && !hops[i].is_empty() {
                let msg = Message {
                    transfer: i as u32,
                    hop: 0,
                };
                engine.push_event(release_time(msg, Time::ZERO), Event::Release(msg));
            }
        }

        while let Some(Reverse((time, _, event))) = engine.events.pop() {
            clock = clock.max(time);
            match event {
                Event::Release(msg) => {
                    let link_id = hops[msg.transfer as usize][msg.hop as usize];
                    engine.seq += 1;
                    let prio: Priority = (
                        planned[msg.transfer as usize].map_or(u64::MAX, Time::as_ps),
                        time.as_ps(),
                        engine.seq,
                    );
                    engine.links[link_id.index()]
                        .pending
                        .push(Reverse((prio, msg)));
                    let payload = transfers[msg.transfer as usize].payload(chunk_size);
                    engine.link_bytes[link_id.index()] += payload.as_u64();
                    engine.try_start(link_id, time, cost_of);
                }
                Event::Complete(msg, link_id) => {
                    let t_idx = msg.transfer as usize;
                    if (msg.hop as usize) + 1 < hops[t_idx].len() {
                        // Store-and-forward: next hop becomes ready now.
                        let next = Message {
                            transfer: msg.transfer,
                            hop: msg.hop + 1,
                        };
                        engine.push_event(time, Event::Release(next));
                    } else {
                        // Transfer complete; release dependents.
                        completed_transfers += 1;
                        for d in std::mem::take(&mut dependents[t_idx]) {
                            deps_remaining[d as usize] -= 1;
                            if deps_remaining[d as usize] == 0 {
                                let msg = Message {
                                    transfer: d,
                                    hop: 0,
                                };
                                engine.push_event(release_time(msg, time), Event::Release(msg));
                            }
                        }
                    }
                    // The link just freed up; serve the next queued message.
                    engine.try_start(link_id, time, cost_of);
                }
            }
        }

        debug_assert_eq!(
            completed_transfers,
            transfers.len(),
            "dependency deadlock: {} of {} transfers completed",
            completed_transfers,
            transfers.len()
        );

        Ok(SimReport::new(
            clock,
            engine.link_bytes,
            engine.link_busy,
            engine.intervals,
            engine.messages,
            algo.total_size(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacos_collective::algorithm::{AlgorithmBuilder, TransferKind};
    use tacos_collective::ChunkId;
    use tacos_topology::{Bandwidth, ByteSize, LinkSpec, NpuId, RingOrientation};

    fn spec() -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
    }

    #[test]
    fn single_transfer_costs_alpha_beta() {
        let topo = Topology::ring(2, spec(), RingOrientation::Bidirectional).unwrap();
        let mut b = AlgorithmBuilder::new("one", 2, ByteSize::mb(1), ByteSize::mb(1));
        b.push(
            ChunkId::new(0),
            NpuId::new(0),
            NpuId::new(1),
            TransferKind::Copy,
            vec![],
        );
        let report = Simulator::new().simulate(&topo, &b.build()).unwrap();
        assert_eq!(report.collective_time(), Time::from_micros(20.5));
        assert_eq!(report.messages(), 1);
        assert_eq!(report.link_bytes().iter().sum::<u64>(), 1_000_000);
    }

    #[test]
    fn contention_serializes_fcfs() {
        // Two chunks want the same link at t=0: the second waits.
        let topo = Topology::ring(2, spec(), RingOrientation::Bidirectional).unwrap();
        let mut b = AlgorithmBuilder::new("two", 2, ByteSize::mb(1), ByteSize::mb(2));
        for c in 0..2u32 {
            b.push(
                ChunkId::new(c),
                NpuId::new(0),
                NpuId::new(1),
                TransferKind::Copy,
                vec![],
            );
        }
        let report = Simulator::new().simulate(&topo, &b.build()).unwrap();
        assert_eq!(report.collective_time(), Time::from_micros(41.0));
    }

    #[test]
    fn multi_hop_routing_cost_models() {
        // Unidirectional 4-ring: 0 -> 2 must take two hops.
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let mut b = AlgorithmBuilder::new("hop", 4, ByteSize::mb(1), ByteSize::mb(1));
        b.push(
            ChunkId::new(0),
            NpuId::new(0),
            NpuId::new(2),
            TransferKind::Copy,
            vec![],
        );
        let algo = b.build();
        // Cut-through (default): alpha once + 2x serialization.
        let report = Simulator::new().simulate(&topo, &algo).unwrap();
        assert_eq!(report.collective_time(), Time::from_micros(40.5));
        assert_eq!(report.messages(), 2);
        // Store-and-forward: full cost per hop.
        let snf = Simulator::with_config(
            SimConfig::default().with_route_model(RouteModel::StoreAndForward),
        )
        .simulate(&topo, &algo)
        .unwrap();
        assert_eq!(snf.collective_time(), Time::from_micros(41.0));
    }

    #[test]
    fn dependencies_sequence_transfers() {
        let topo = Topology::ring(4, spec(), RingOrientation::Bidirectional).unwrap();
        let mut b = AlgorithmBuilder::new("dep", 4, ByteSize::mb(1), ByteSize::mb(1));
        let first = b.push(
            ChunkId::new(0),
            NpuId::new(0),
            NpuId::new(1),
            TransferKind::Copy,
            vec![],
        );
        // Different link, but must wait for `first`.
        b.push(
            ChunkId::new(0),
            NpuId::new(1),
            NpuId::new(2),
            TransferKind::Copy,
            vec![first],
        );
        let report = Simulator::new().simulate(&topo, &b.build()).unwrap();
        assert_eq!(report.collective_time(), Time::from_micros(41.0));
    }

    #[test]
    fn unroutable_is_detected() {
        let mut tb = tacos_topology::TopologyBuilder::new("oneway");
        tb.npus(2);
        tb.link(NpuId::new(0), NpuId::new(1), spec());
        let topo = tb.build().unwrap();
        let mut b = AlgorithmBuilder::new("bad", 2, ByteSize::mb(1), ByteSize::mb(1));
        b.push(
            ChunkId::new(0),
            NpuId::new(1),
            NpuId::new(0),
            TransferKind::Copy,
            vec![],
        );
        assert!(matches!(
            Simulator::new().simulate(&topo, &b.build()),
            Err(SimError::Unroutable { src: 1, dst: 0 })
        ));
    }

    #[test]
    fn bad_link_is_detected() {
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let mut b = AlgorithmBuilder::new("bad", 4, ByteSize::mb(1), ByteSize::mb(1));
        // Link 1 is 1 -> 2, not 0 -> 1.
        b.push_scheduled(
            ChunkId::new(0),
            NpuId::new(0),
            NpuId::new(1),
            TransferKind::Copy,
            tacos_topology::LinkId::new(1),
            Time::ZERO,
            Time::from_micros(20.5),
            vec![],
        );
        assert!(matches!(
            Simulator::new().simulate(&topo, &b.build()),
            Err(SimError::BadLink { transfer: 0, .. })
        ));
    }

    #[test]
    fn mismatched_npus_rejected() {
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let b = AlgorithmBuilder::new("empty", 8, ByteSize::mb(1), ByteSize::mb(1));
        assert!(matches!(
            Simulator::new().simulate(&topo, &b.build()),
            Err(SimError::NpuCountMismatch {
                topology: 4,
                algorithm: 8
            })
        ));
    }

    #[test]
    fn empty_algorithm_is_instant() {
        let topo = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        let b = AlgorithmBuilder::new("empty", 4, ByteSize::mb(1), ByteSize::mb(1));
        let report = Simulator::new().simulate(&topo, &b.build()).unwrap();
        assert_eq!(report.collective_time(), Time::ZERO);
    }

    /// Invariant 5 of DESIGN.md: simulating a TACOS schedule reproduces the
    /// planned collective time exactly.
    #[test]
    fn tacos_schedule_replays_exactly() {
        use tacos_core::{Synthesizer, SynthesizerConfig};
        let topo = Topology::mesh_2d(3, 3, spec()).unwrap();
        for seed in [1u64, 7, 42] {
            let coll = tacos_collective::Collective::all_reduce(9, ByteSize::mb(9)).unwrap();
            let result = Synthesizer::new(SynthesizerConfig::default().with_seed(seed))
                .synthesize(&topo, &coll)
                .unwrap();
            let report = Simulator::new()
                .simulate(&topo, result.algorithm())
                .unwrap();
            assert_eq!(
                report.collective_time(),
                result.collective_time(),
                "seed {seed}"
            );
        }
    }
}
