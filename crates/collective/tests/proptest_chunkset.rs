//! Model-based property tests: `ChunkSet` against `std::collections::HashSet`.

use std::collections::HashSet;

use proptest::prelude::*;
use tacos_collective::{ChunkId, ChunkSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
    Contains(u32),
}

fn arb_ops(capacity: u32) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..capacity).prop_map(Op::Insert),
            (0..capacity).prop_map(Op::Remove),
            (0..capacity).prop_map(Op::Contains),
        ],
        0..200,
    )
}

proptest! {
    /// ChunkSet behaves exactly like a HashSet<u32> under random
    /// insert/remove/contains sequences.
    #[test]
    fn chunkset_matches_hashset(capacity in 1u32..300, ops in arb_ops(300)) {
        let mut set = ChunkSet::new(capacity as usize);
        let mut model: HashSet<u32> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(v) if v < capacity => {
                    let fresh = set.insert(ChunkId::new(v));
                    prop_assert_eq!(fresh, model.insert(v));
                }
                Op::Remove(v) if v < capacity => {
                    let was = set.remove(ChunkId::new(v));
                    prop_assert_eq!(was, model.remove(&v));
                }
                Op::Contains(v) if v < capacity => {
                    prop_assert_eq!(set.contains(ChunkId::new(v)), model.contains(&v));
                }
                _ => {}
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        // Iteration yields exactly the model's elements, sorted.
        let mut expected: Vec<u32> = model.into_iter().collect();
        expected.sort_unstable();
        let got: Vec<u32> = set.iter().map(|c| c.raw()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Set algebra laws: union/subtract/is_subset against the model.
    #[test]
    fn set_algebra_laws(
        a in prop::collection::hash_set(0u32..256, 0..64),
        b in prop::collection::hash_set(0u32..256, 0..64),
    ) {
        let build = |m: &HashSet<u32>| {
            let mut s = ChunkSet::new(256);
            for &v in m {
                s.insert(ChunkId::new(v));
            }
            s
        };
        let sa = build(&a);
        let sb = build(&b);

        let mut union = sa.clone();
        union.union_with(&sb);
        let model_union: HashSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(union.len(), model_union.len());

        let mut diff = sa.clone();
        diff.subtract(&sb);
        let model_diff: HashSet<u32> = a.difference(&b).copied().collect();
        prop_assert_eq!(diff.len(), model_diff.len());
        for v in &model_diff {
            prop_assert!(diff.contains(ChunkId::new(*v)));
        }

        prop_assert_eq!(sa.intersects(&sb), !a.is_disjoint(&b));
        prop_assert_eq!(diff.is_subset(&sa), true);
        prop_assert_eq!(sa.is_subset(&union), true);
    }

    /// pick_intersection returns an element of the intersection whenever
    /// one exists, for every rotation offset.
    #[test]
    fn pick_intersection_complete(
        a in prop::collection::hash_set(0u32..512, 0..64),
        b in prop::collection::hash_set(0u32..512, 0..64),
        start in 0usize..16,
    ) {
        let build = |m: &HashSet<u32>| {
            let mut s = ChunkSet::new(512);
            for &v in m {
                s.insert(ChunkId::new(v));
            }
            s
        };
        let sa = build(&a);
        let sb = build(&b);
        let inter: HashSet<u32> = a.intersection(&b).copied().collect();
        match sa.pick_intersection(&sb, start) {
            Some(c) => prop_assert!(inter.contains(&c.raw())),
            None => prop_assert!(inter.is_empty()),
        }
    }

    /// pick_excluding_where honors both the exclusion set and the
    /// predicate, and finds a qualifying chunk when one exists.
    #[test]
    fn pick_excluding_where_correct(
        a in prop::collection::hash_set(0u32..512, 0..64),
        minus in prop::collection::hash_set(0u32..512, 0..64),
        start in 0usize..16,
        threshold in 0u32..512,
    ) {
        let build = |m: &HashSet<u32>| {
            let mut s = ChunkSet::new(512);
            for &v in m {
                s.insert(ChunkId::new(v));
            }
            s
        };
        let sa = build(&a);
        let sm = build(&minus);
        let qualify: Vec<u32> = a
            .iter()
            .filter(|v| !minus.contains(v) && **v >= threshold)
            .copied()
            .collect();
        match sa.pick_excluding_where(&sm, start, |c| c.raw() >= threshold) {
            Some(c) => {
                prop_assert!(a.contains(&c.raw()));
                prop_assert!(!minus.contains(&c.raw()));
                prop_assert!(c.raw() >= threshold);
            }
            None => prop_assert!(qualify.is_empty()),
        }
    }
}
