//! # TACOS: Topology-Aware Collective Algorithm Synthesizer
//!
//! A full reproduction of *"TACOS: Topology-Aware Collective Algorithm
//! Synthesizer for Distributed Machine Learning"* (MICRO 2024,
//! arXiv:2304.05301). This facade crate re-exports every subsystem of the
//! workspace under one roof:
//!
//! * [`topology`] — NPU/link network model with α–β link costs, every
//!   topology evaluated in the paper (Ring, FullyConnected, Mesh, Torus,
//!   Hypercube-style 3D mesh, Switch with unwinding, DragonFly, 3D-RFS,
//!   DGX-1), and a builder for arbitrary heterogeneous/asymmetric networks.
//! * [`collective`] — collective communication patterns (All-Gather,
//!   Reduce-Scatter, All-Reduce, Broadcast, Reduce, …), the chunk model, and
//!   the [`collective::algorithm::CollectiveAlgorithm`] IR shared by the
//!   synthesizer, the baselines, and the simulator.
//! * [`ten`] — the Time-expanded Network representation (paper §IV-A),
//!   both as a materialized graph and as the event-driven expanding TEN
//!   used during synthesis.
//! * [`synthesizer`] — the paper's contribution: utilization-maximizing
//!   link–chunk matching (Alg. 1) and end-to-end synthesis (Alg. 2).
//! * [`sim`] — the congestion-aware analytical network simulator used to
//!   evaluate synthesized and baseline algorithms (paper §V-C).
//! * [`baselines`] — Ring, Direct, RHD, DBT, BlueConnect, Themis,
//!   MultiTree, C-Cube, a TACCL-like bounded-optimal search, and the
//!   theoretical ideal bound.
//! * [`workload`] — the shared evaluation vocabulary
//!   ([`workload::Mechanism`]: baseline / TACOS config / ideal bound) and
//!   end-to-end training models (GNMT, ResNet-50, Turing-NLG, MSFT-1T)
//!   with exposed-communication accounting.
//! * [`report`] — ASCII tables, heat maps, CSV/JSON writers and the
//!   polynomial fits used by the scalability analysis.
//! * [`scenario`] — the declarative scenario engine: whole evaluation
//!   campaigns described as TOML sweep files (topology × collective ×
//!   size × chunking × link × seed grids), expanded deterministically and
//!   executed by a work-stealing sharded runner that routes every point
//!   through the algorithm cache, so re-runs and overlapping grids are
//!   incremental. Run them with `tacos scenario run <file.toml>`; the
//!   checked-in files under `scenarios/` reproduce all sixteen paper
//!   figure/table/ablation experiments — the evaluation lives entirely
//!   in data, and new sweeps should be scenario files too.
//!
//! ## Quickstart
//!
//! Synthesize an All-Reduce for a 2D mesh and measure its bandwidth:
//!
//! ```
//! use tacos::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 5x5 2D mesh, 0.5 us link latency, 50 GB/s links.
//! let topo = Topology::mesh_2d(5, 5, LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0)))?;
//! let collective = Collective::all_reduce(topo.num_npus(), ByteSize::mib(64))?;
//! let synthesizer = Synthesizer::new(SynthesizerConfig::default().with_seed(42));
//! let algorithm = synthesizer.synthesize(&topo, &collective)?;
//! println!("All-Reduce finishes in {}", algorithm.collective_time());
//! # Ok(())
//! # }
//! ```

pub use tacos_baselines as baselines;
pub use tacos_collective as collective;
pub use tacos_core as synthesizer;
pub use tacos_report as report;
pub use tacos_scenario as scenario;
pub use tacos_sim as sim;
pub use tacos_ten as ten;
pub use tacos_topology as topology;
pub use tacos_workload as workload;

/// Commonly used types, re-exported for `use tacos::prelude::*`.
pub mod prelude {
    pub use tacos_baselines::{BaselineAlgorithm, BaselineKind, IdealBound};
    pub use tacos_collective::{
        algorithm::CollectiveAlgorithm, Chunk, ChunkId, Collective, CollectivePattern,
    };
    pub use tacos_core::{AlgorithmCache, SynthesisResult, Synthesizer, SynthesizerConfig};
    pub use tacos_scenario::ScenarioSpec;
    pub use tacos_sim::{SimConfig, SimReport, Simulator};
    pub use tacos_ten::TimeExpandedNetwork;
    pub use tacos_topology::{
        Bandwidth, ByteSize, LinkId, LinkSpec, NpuId, Time, Topology, TopologyBuilder,
    };
    pub use tacos_workload::{Mechanism, TrainingEvaluator, Workload};
}
