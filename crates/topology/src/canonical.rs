//! Canonical single-fabric topologies evaluated in the paper (Table IV):
//! Ring, FullyConnected, 2D/3D Torus, 2D Mesh, 3D "Hypercube" (a 3D grid
//! without wraparound), and unwound Switch fabrics.

use crate::error::TopologyError;
use crate::hierarchical::{multi_dim, Dim, DimKind};
use crate::ids::NpuId;
use crate::link::LinkSpec;
use crate::topology::{Topology, TopologyBuilder};

/// Whether a ring carries traffic one way or both ways.
///
/// The paper's baseline "Ring" algorithm and topology are bidirectional
/// (footnote 3); the unidirectional variant appears in Figs. 7 and 10(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingOrientation {
    /// Each NPU links only to its successor `(i+1) mod n`.
    Unidirectional,
    /// Each NPU links to both neighbors.
    Bidirectional,
}

impl Topology {
    /// A ring of `n` NPUs.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if `n < 2`.
    pub fn ring(
        n: usize,
        spec: LinkSpec,
        orientation: RingOrientation,
    ) -> Result<Topology, TopologyError> {
        if n < 2 {
            return Err(TopologyError::UnsupportedShape {
                reason: format!("ring requires at least 2 NPUs, got {n}"),
            });
        }
        let mut b = TopologyBuilder::new(format!("Ring({n})"));
        b.npus(n);
        if n == 2 {
            // The degenerate 2-ring is a single bidirectional connection in
            // either orientation.
            b.bidi_link(NpuId::new(0), NpuId::new(1), spec);
            return b.build();
        }
        for i in 0..n {
            let src = NpuId::new(i as u32);
            let dst = NpuId::new(((i + 1) % n) as u32);
            b.link(src, dst, spec);
            if orientation == RingOrientation::Bidirectional {
                b.link(dst, src, spec);
            }
        }
        b.build()
    }

    /// A fully connected topology: a dedicated link between every ordered
    /// NPU pair.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if `n < 2`.
    pub fn fully_connected(n: usize, spec: LinkSpec) -> Result<Topology, TopologyError> {
        if n < 2 {
            return Err(TopologyError::UnsupportedShape {
                reason: format!("fully connected requires at least 2 NPUs, got {n}"),
            });
        }
        let mut b = TopologyBuilder::new(format!("FullyConnected({n})"));
        b.npus(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    b.link(NpuId::new(i as u32), NpuId::new(j as u32), spec);
                }
            }
        }
        b.build()
    }

    /// A 2D mesh (`rows × cols`, bidirectional neighbor links, **no**
    /// wraparound) — asymmetric: border NPUs have lower degree (Table IV).
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if either side is < 2.
    pub fn mesh_2d(rows: usize, cols: usize, spec: LinkSpec) -> Result<Topology, TopologyError> {
        require_side("2D mesh", rows)?;
        require_side("2D mesh", cols)?;
        multi_dim(
            format!("Mesh2D({rows}x{cols})"),
            &[
                Dim::new(DimKind::Mesh, cols, spec),
                Dim::new(DimKind::Mesh, rows, spec),
            ],
        )
    }

    /// A 2D torus (`rows × cols`, bidirectional neighbor links **with**
    /// wraparound) — symmetric.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if either side is < 2.
    pub fn torus_2d(rows: usize, cols: usize, spec: LinkSpec) -> Result<Topology, TopologyError> {
        require_side("2D torus", rows)?;
        require_side("2D torus", cols)?;
        multi_dim(
            format!("Torus2D({rows}x{cols})"),
            &[
                Dim::new(DimKind::Ring, cols, spec),
                Dim::new(DimKind::Ring, rows, spec),
            ],
        )
    }

    /// A 3D torus (`x × y × z`, rings along every dimension) — symmetric.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if any side is < 2.
    pub fn torus_3d(
        x: usize,
        y: usize,
        z: usize,
        spec: LinkSpec,
    ) -> Result<Topology, TopologyError> {
        require_side("3D torus", x)?;
        require_side("3D torus", y)?;
        require_side("3D torus", z)?;
        multi_dim(
            format!("Torus3D({x}x{y}x{z})"),
            &[
                Dim::new(DimKind::Ring, x, spec),
                Dim::new(DimKind::Ring, y, spec),
                Dim::new(DimKind::Ring, z, spec),
            ],
        )
    }

    /// The paper's "3D Hypercube": a 3D grid without wraparound (lines along
    /// every dimension) — asymmetric, like the 2D mesh (Table IV lists both
    /// as asymmetric; the 5×5×5 instance of §VI-B.6 is only meaningful for a
    /// grid, not a binary hypercube).
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if any side is < 2.
    pub fn hypercube_3d(
        x: usize,
        y: usize,
        z: usize,
        spec: LinkSpec,
    ) -> Result<Topology, TopologyError> {
        require_side("3D hypercube", x)?;
        require_side("3D hypercube", y)?;
        require_side("3D hypercube", z)?;
        multi_dim(
            format!("Hypercube3D({x}x{y}x{z})"),
            &[
                Dim::new(DimKind::Mesh, x, spec),
                Dim::new(DimKind::Mesh, y, spec),
                Dim::new(DimKind::Mesh, z, spec),
            ],
        )
    }

    /// A classic binary hypercube with `2^dims` NPUs (each NPU links to the
    /// `dims` NPUs whose index differs in one bit). Provided for RHD-style
    /// experiments beyond the paper's grids.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if `dims == 0` or `dims > 20`.
    pub fn binary_hypercube(dims: u32, spec: LinkSpec) -> Result<Topology, TopologyError> {
        if dims == 0 || dims > 20 {
            return Err(TopologyError::UnsupportedShape {
                reason: format!("binary hypercube dims must be in 1..=20, got {dims}"),
            });
        }
        let n = 1usize << dims;
        let mut b = TopologyBuilder::new(format!("BinaryHypercube({dims})"));
        b.npus(n);
        for i in 0..n {
            for d in 0..dims {
                let j = i ^ (1 << d);
                // Each unordered pair is visited twice; add each direction once.
                b.link(NpuId::new(i as u32), NpuId::new(j as u32), spec);
            }
        }
        b.build()
    }

    /// An `n`-NPU switch fabric unwound into point-to-point links with the
    /// given `degree` (paper §IV-G, Fig. 13): NPU `i` links to
    /// `(i+1), …, (i+degree) (mod n)`, each at `1/degree` of the port
    /// bandwidth; α is unchanged.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if `n < 2` or
    /// `degree ∉ 1..n`.
    pub fn switch(n: usize, port_spec: LinkSpec, degree: u32) -> Result<Topology, TopologyError> {
        if n < 2 {
            return Err(TopologyError::UnsupportedShape {
                reason: format!("switch requires at least 2 NPUs, got {n}"),
            });
        }
        if degree == 0 || degree as usize >= n {
            return Err(TopologyError::UnsupportedShape {
                reason: format!("switch unwinding degree must be in 1..{n}, got {degree}"),
            });
        }
        let shared = port_spec.share_bandwidth(degree);
        let mut b = TopologyBuilder::new(format!("Switch({n},d={degree})"));
        b.npus(n);
        for i in 0..n {
            for d in 1..=degree as usize {
                b.link(
                    NpuId::new(i as u32),
                    NpuId::new(((i + d) % n) as u32),
                    shared,
                );
            }
        }
        b.build()
    }
}

impl Topology {
    /// Generalized switch unwinding (the flexible scheme §IV-G leaves as
    /// future work): NPU `i` links to `(i + o) mod n` for every offset `o`
    /// in `offsets`, with the port bandwidth shared across all offsets.
    /// `switch(n, spec, d)` is the special case `offsets = [1, …, d]`;
    /// non-contiguous offset sets (e.g. `[1, 2, 4]`) trade diameter
    /// against per-link bandwidth differently.
    ///
    /// # Errors
    /// [`TopologyError::UnsupportedShape`] if `n < 2`, `offsets` is empty,
    /// contains 0 or a value ≥ `n`, or contains duplicates.
    pub fn switch_unwound(
        n: usize,
        port_spec: LinkSpec,
        offsets: &[usize],
    ) -> Result<Topology, TopologyError> {
        if n < 2 {
            return Err(TopologyError::UnsupportedShape {
                reason: format!("switch requires at least 2 NPUs, got {n}"),
            });
        }
        if offsets.is_empty() {
            return Err(TopologyError::UnsupportedShape {
                reason: "at least one unwinding offset is required".into(),
            });
        }
        let mut seen = vec![false; n];
        for &o in offsets {
            if o == 0 || o >= n {
                return Err(TopologyError::UnsupportedShape {
                    reason: format!("unwinding offset must be in 1..{n}, got {o}"),
                });
            }
            if seen[o] {
                return Err(TopologyError::UnsupportedShape {
                    reason: format!("duplicate unwinding offset {o}"),
                });
            }
            seen[o] = true;
        }
        let shared = port_spec.share_bandwidth(offsets.len() as u32);
        let mut b = TopologyBuilder::new(format!("Switch({n},offsets={offsets:?})"));
        b.npus(n);
        for i in 0..n {
            for &o in offsets {
                b.link(
                    NpuId::new(i as u32),
                    NpuId::new(((i + o) % n) as u32),
                    shared,
                );
            }
        }
        b.build()
    }
}

fn require_side(what: &str, side: usize) -> Result<(), TopologyError> {
    if side < 2 {
        Err(TopologyError::UnsupportedShape {
            reason: format!("{what} requires every side >= 2, got {side}"),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bandwidth, ByteSize, Time};

    fn spec() -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(50.0))
    }

    #[test]
    fn unidirectional_ring() {
        let t = Topology::ring(4, spec(), RingOrientation::Unidirectional).unwrap();
        assert_eq!(t.num_links(), 4);
        assert!(t.has_link(NpuId::new(3), NpuId::new(0)));
        assert!(!t.has_link(NpuId::new(0), NpuId::new(3)));
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn bidirectional_ring() {
        let t = Topology::ring(4, spec(), RingOrientation::Bidirectional).unwrap();
        assert_eq!(t.num_links(), 8);
        assert!(t.is_degree_symmetric());
    }

    #[test]
    fn two_npu_bidirectional_ring_has_two_links() {
        let t = Topology::ring(2, spec(), RingOrientation::Bidirectional).unwrap();
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    fn ring_rejects_singleton() {
        assert!(Topology::ring(1, spec(), RingOrientation::Bidirectional).is_err());
    }

    #[test]
    fn fully_connected_counts() {
        let t = Topology::fully_connected(4, spec()).unwrap();
        assert_eq!(t.num_links(), 12);
        assert_eq!(t.degree_range(), (3, 3));
        assert_eq!(t.diameter_latency(), Time::from_micros(0.5));
    }

    #[test]
    fn mesh_2d_is_asymmetric() {
        let t = Topology::mesh_2d(3, 3, spec()).unwrap();
        assert_eq!(t.num_npus(), 9);
        // 2 * (rows*(cols-1) + cols*(rows-1)) = 2 * (6 + 6) = 24.
        assert_eq!(t.num_links(), 24);
        assert_eq!(t.degree_range(), (2, 4)); // corners 2, center 4
        assert!(!t.is_degree_symmetric());
        assert!(t.is_strongly_connected());
        assert_eq!(t.name(), "Mesh2D(3x3)");
    }

    #[test]
    fn torus_2d_is_symmetric() {
        let t = Topology::torus_2d(3, 3, spec()).unwrap();
        assert_eq!(t.num_links(), 36);
        assert!(t.is_degree_symmetric());
    }

    #[test]
    fn torus_3d_shape() {
        let t = Topology::torus_3d(2, 2, 2, spec()).unwrap();
        assert_eq!(t.num_npus(), 8);
        // Each dimension: 4 groups of 2 -> single bidi pair = 2 links each.
        assert_eq!(t.num_links(), 24);
        assert!(t.is_degree_symmetric());
    }

    #[test]
    fn hypercube_3d_is_grid_without_wraparound() {
        let t = Topology::hypercube_3d(4, 4, 4, spec()).unwrap();
        assert_eq!(t.num_npus(), 64);
        // Per dimension: 16 lines x 3 internal pairs x 2 dirs = 96; x3 dims.
        assert_eq!(t.num_links(), 288);
        assert!(!t.is_degree_symmetric());
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn binary_hypercube_shape() {
        let t = Topology::binary_hypercube(3, spec()).unwrap();
        assert_eq!(t.num_npus(), 8);
        assert_eq!(t.num_links(), 24);
        assert!(t.has_link(NpuId::new(0), NpuId::new(4)));
        assert!(t.is_degree_symmetric());
    }

    #[test]
    fn switch_unwinding_fig13() {
        // Paper Fig. 13: 4-NPU switch at 120 GB/s.
        let port = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(120.0));
        for (degree, links, gbps) in [(1u32, 4usize, 120.0), (2, 8, 60.0), (3, 12, 40.0)] {
            let t = Topology::switch(4, port, degree).unwrap();
            assert_eq!(t.num_links(), links, "degree {degree}");
            let l = t
                .best_link_between(NpuId::new(0), NpuId::new(1), ByteSize::ZERO)
                .unwrap();
            assert_eq!(l.spec().bandwidth().as_gbps(), gbps, "degree {degree}");
            assert_eq!(l.spec().alpha(), Time::from_micros(0.5));
            assert!(t.is_strongly_connected());
        }
    }

    #[test]
    fn switch_rejects_bad_degree() {
        assert!(Topology::switch(4, spec(), 0).is_err());
        assert!(Topology::switch(4, spec(), 4).is_err());
    }
}

#[cfg(test)]
mod unwound_tests {
    use super::*;
    use crate::units::{Bandwidth, ByteSize, Time};

    #[test]
    fn generalized_unwinding_offsets() {
        let port = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(120.0));
        // Offsets {1, 2, 4} on an 8-NPU switch: 3 links per NPU at 40 GB/s.
        let t = Topology::switch_unwound(8, port, &[1, 2, 4]).unwrap();
        assert_eq!(t.num_links(), 24);
        assert!(t.has_link(NpuId::new(0), NpuId::new(4)));
        assert!(!t.has_link(NpuId::new(0), NpuId::new(3)));
        let l = t
            .best_link_between(NpuId::new(0), NpuId::new(1), ByteSize::ZERO)
            .unwrap();
        assert_eq!(l.spec().bandwidth().as_gbps(), 40.0);
        assert!(t.is_strongly_connected());
        // Power-of-two offsets give logarithmic diameter: the farthest
        // pair (0 -> 7 = 4 + 2 + 1) takes 3 alpha hops.
        assert_eq!(t.diameter_latency(), Time::from_micros(1.5));
    }

    #[test]
    fn generalized_unwinding_matches_contiguous_special_case() {
        let port = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(120.0));
        let a = Topology::switch(6, port, 2).unwrap();
        let b = Topology::switch_unwound(6, port, &[1, 2]).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!((la.src(), la.dst()), (lb.src(), lb.dst()));
            assert_eq!(
                la.spec().bandwidth().as_gbps(),
                lb.spec().bandwidth().as_gbps()
            );
        }
    }

    #[test]
    fn generalized_unwinding_validation() {
        let port = LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(120.0));
        assert!(Topology::switch_unwound(1, port, &[1]).is_err());
        assert!(Topology::switch_unwound(4, port, &[]).is_err());
        assert!(Topology::switch_unwound(4, port, &[0]).is_err());
        assert!(Topology::switch_unwound(4, port, &[4]).is_err());
        assert!(Topology::switch_unwound(4, port, &[1, 1]).is_err());
    }
}
