//! # tacos-serve
//!
//! Synthesis-as-a-service: the paper's synthesizer wrapped in a
//! long-lived daemon (`tacos serve`) so repeated collective-algorithm
//! requests — the pattern a training-cluster scheduler produces —
//! amortize synthesis cost across clients and process restarts.
//!
//! The daemon is plain std: a non-blocking accept loop, a bounded
//! synthesis worker pool with admission control, single-flight
//! deduplication of concurrent identical requests (one synthesis, N
//! responses), per-request deadlines, and a warm cache persisted to
//! disk with a [`tacos_core::MATCHER_VERSION`]-checked snapshot header.
//! The wire protocol is one JSON object per line in each direction; see
//! [`protocol`].
//!
//! [`bench`] implements `tacos serve-bench`, which replays a scenario
//! grid as a request trace at several concurrency levels and reports
//! throughput and latency percentiles.

#![warn(missing_docs)]

pub mod bench;
mod client;
mod daemon;
pub mod protocol;

pub use bench::{build_trace, BenchConfig};
pub use client::Client;
pub use daemon::{Daemon, DaemonConfig, DaemonHandle, SNAPSHOT_FILE};
pub use protocol::{OkBody, Op, Request, Response, StatsBody};
