//! Multi-dimensional hierarchical topologies (paper §V-B, Table IV).
//!
//! AI clusters compose connectivity patterns per dimension: the paper's
//! **3D-RFS** is Ring × FullyConnected × Switch with per-dimension link
//! bandwidths; the **2D Switch** is Switch × Switch. NPU `i` is addressed by
//! mixed-radix coordinates (dimension 0 varies fastest); within a dimension,
//! NPUs that agree on all other coordinates form a *group* wired with that
//! dimension's [`DimKind`].
//!
//! Dimension metadata is retained on the built [`Topology`] so that
//! dimension-aware baselines (BlueConnect, Themis) can schedule per
//! dimension.

use std::fmt;

use crate::error::TopologyError;
use crate::ids::NpuId;
use crate::link::LinkSpec;
use crate::topology::{Topology, TopologyBuilder};

/// Connectivity pattern of one dimension of a hierarchical topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DimKind {
    /// Bidirectional ring (each member connects to both neighbors).
    Ring,
    /// All-to-all point-to-point links.
    FullyConnected,
    /// Switch fabric, unwound into point-to-point links (paper §IV-G). The
    /// `degree` field selects the unwinding; bandwidth is divided by it.
    Switch {
        /// Unwinding degree `d`: each member gets `d` outgoing links to the
        /// next `d` members (mod group size), each at `1/d` of the port
        /// bandwidth.
        degree: u32,
    },
    /// Linear array without wraparound (mesh dimension).
    Mesh,
}

impl fmt::Display for DimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimKind::Ring => write!(f, "Ring"),
            DimKind::FullyConnected => write!(f, "FC"),
            DimKind::Switch { degree } => write!(f, "Switch(d={degree})"),
            DimKind::Mesh => write!(f, "Mesh"),
        }
    }
}

/// One dimension of a hierarchical topology: a connectivity pattern, a group
/// size, and the α–β parameters of that dimension's links.
#[derive(Debug, Clone, PartialEq)]
pub struct Dim {
    kind: DimKind,
    size: usize,
    spec: LinkSpec,
}

impl Dim {
    /// Creates a dimension description.
    ///
    /// # Panics
    /// Panics if `size < 2` (a dimension must have at least two members) or
    /// if a switch unwinding degree is zero or ≥ the group size.
    pub fn new(kind: DimKind, size: usize, spec: LinkSpec) -> Self {
        assert!(size >= 2, "dimension size must be at least 2, got {size}");
        if let DimKind::Switch { degree } = kind {
            assert!(
                degree >= 1 && (degree as usize) < size,
                "switch unwinding degree must be in 1..size"
            );
        }
        Dim { kind, size, spec }
    }

    /// The connectivity pattern.
    pub fn kind(&self) -> DimKind {
        self.kind
    }

    /// Number of NPUs along this dimension.
    pub fn size(&self) -> usize {
        self.size
    }

    /// α–β parameters of this dimension's links (for switches, the *port*
    /// spec before unwinding divides the bandwidth).
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} ({})", self.kind, self.size, self.spec)
    }
}

/// Wires one dimension group (the NPUs in `members`, ordered by their
/// coordinate along the dimension) into `builder` according to `dim`.
fn wire_group(builder: &mut TopologyBuilder, members: &[NpuId], dim: &Dim) {
    let k = members.len();
    match dim.kind() {
        DimKind::Ring => {
            // Bidirectional ring; the degenerate 2-ring is a single
            // bidirectional connection, not a doubled one.
            if k == 2 {
                builder.bidi_link(members[0], members[1], *dim.spec());
            } else {
                for i in 0..k {
                    builder.link(members[i], members[(i + 1) % k], *dim.spec());
                    builder.link(members[(i + 1) % k], members[i], *dim.spec());
                }
            }
        }
        DimKind::FullyConnected => {
            for i in 0..k {
                for j in 0..k {
                    if i != j {
                        builder.link(members[i], members[j], *dim.spec());
                    }
                }
            }
        }
        DimKind::Switch { degree } => {
            let shared = dim.spec().share_bandwidth(degree);
            for i in 0..k {
                for d in 1..=degree as usize {
                    builder.link(members[i], members[(i + d) % k], shared);
                }
            }
        }
        DimKind::Mesh => {
            for i in 0..k - 1 {
                builder.bidi_link(members[i], members[i + 1], *dim.spec());
            }
        }
    }
}

/// Builds a hierarchical topology from per-dimension descriptions.
///
/// NPU count is the product of dimension sizes. Dimension 0 varies fastest
/// in the NPU index (ASTRA-sim convention).
///
/// # Errors
/// Returns [`TopologyError::BadDimensions`] if `dims` is empty.
///
/// ```
/// use tacos_topology::{multi_dim, Bandwidth, Dim, DimKind, LinkSpec, Time};
/// // The paper's 3D-RFS: Ring(2) x FC(4) x Switch(8), [200,100,50] GB/s.
/// let alpha = Time::from_micros(0.5);
/// let topo = multi_dim("3D-RFS", &[
///     Dim::new(DimKind::Ring, 2, LinkSpec::new(alpha, Bandwidth::gbps(200.0))),
///     Dim::new(DimKind::FullyConnected, 4, LinkSpec::new(alpha, Bandwidth::gbps(100.0))),
///     Dim::new(DimKind::Switch { degree: 1 }, 8, LinkSpec::new(alpha, Bandwidth::gbps(50.0))),
/// ])?;
/// assert_eq!(topo.num_npus(), 64);
/// # Ok::<(), tacos_topology::TopologyError>(())
/// ```
pub fn multi_dim(name: impl Into<String>, dims: &[Dim]) -> Result<Topology, TopologyError> {
    if dims.is_empty() {
        return Err(TopologyError::BadDimensions {
            reason: "at least one dimension is required".into(),
        });
    }
    let num_npus: usize = dims.iter().map(Dim::size).product();
    let mut builder = TopologyBuilder::new(name);
    builder.npus(num_npus);
    for dim in dims {
        builder.dim(dim.clone());
    }

    // For each dimension, iterate over all groups: fix the coordinates of
    // the other dimensions, vary this one.
    let sizes: Vec<usize> = dims.iter().map(Dim::size).collect();
    let strides: Vec<usize> = {
        let mut s = Vec::with_capacity(dims.len());
        let mut acc = 1;
        for size in &sizes {
            s.push(acc);
            acc *= size;
        }
        s
    };
    for (d, dim) in dims.iter().enumerate() {
        let group_count = num_npus / sizes[d];
        // Enumerate base indices: all NPUs whose coordinate along d is 0.
        let mut bases = Vec::with_capacity(group_count);
        for npu in 0..num_npus {
            if (npu / strides[d]).is_multiple_of(sizes[d]) {
                bases.push(npu);
            }
        }
        debug_assert_eq!(bases.len(), group_count);
        for base in bases {
            let members: Vec<NpuId> = (0..sizes[d])
                .map(|c| NpuId::new((base + c * strides[d]) as u32))
                .collect();
            wire_group(&mut builder, &members, dim);
        }
    }
    builder.build()
}

impl Topology {
    /// The paper's **3D-RFS** topology: Ring × FullyConnected × Switch with
    /// per-dimension bandwidths (§VI-B.1, Table V). `alpha` applies to every
    /// dimension.
    ///
    /// # Errors
    /// Propagates [`TopologyError::BadDimensions`] for degenerate sizes.
    pub fn rfs_3d(
        ring: usize,
        fc: usize,
        switch: usize,
        alpha: crate::units::Time,
        bandwidths_gbps: [f64; 3],
    ) -> Result<Topology, TopologyError> {
        multi_dim(
            format!("3D-RFS({ring}x{fc}x{switch})"),
            &[
                Dim::new(
                    DimKind::Ring,
                    ring,
                    LinkSpec::new(alpha, crate::units::Bandwidth::gbps(bandwidths_gbps[0])),
                ),
                Dim::new(
                    DimKind::FullyConnected,
                    fc,
                    LinkSpec::new(alpha, crate::units::Bandwidth::gbps(bandwidths_gbps[1])),
                ),
                Dim::new(
                    DimKind::Switch { degree: 1 },
                    switch,
                    LinkSpec::new(alpha, crate::units::Bandwidth::gbps(bandwidths_gbps[2])),
                ),
            ],
        )
    }

    /// The paper's **2D Switch** topology (§VI-B.1): Switch × Switch with
    /// per-dimension bandwidths.
    ///
    /// # Errors
    /// Propagates [`TopologyError::BadDimensions`] for degenerate sizes.
    pub fn switch_2d(
        d0: usize,
        d1: usize,
        alpha: crate::units::Time,
        bandwidths_gbps: [f64; 2],
    ) -> Result<Topology, TopologyError> {
        multi_dim(
            format!("2DSwitch({d0}x{d1})"),
            &[
                Dim::new(
                    DimKind::Switch { degree: 1 },
                    d0,
                    LinkSpec::new(alpha, crate::units::Bandwidth::gbps(bandwidths_gbps[0])),
                ),
                Dim::new(
                    DimKind::Switch { degree: 1 },
                    d1,
                    LinkSpec::new(alpha, crate::units::Bandwidth::gbps(bandwidths_gbps[1])),
                ),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bandwidth, Time};

    fn spec(gbps: f64) -> LinkSpec {
        LinkSpec::new(Time::from_micros(0.5), Bandwidth::gbps(gbps))
    }

    #[test]
    fn dim_accessors() {
        let d = Dim::new(DimKind::Ring, 4, spec(50.0));
        assert_eq!(d.kind(), DimKind::Ring);
        assert_eq!(d.size(), 4);
        assert_eq!(format!("{d}"), "Ringx4 (α=500.000ns 1/β=50.00GB/s)");
    }

    #[test]
    #[should_panic(expected = "dimension size")]
    fn dim_rejects_tiny() {
        let _ = Dim::new(DimKind::Ring, 1, spec(50.0));
    }

    #[test]
    fn ring_dim_wiring() {
        let t = multi_dim("r4", &[Dim::new(DimKind::Ring, 4, spec(50.0))]).unwrap();
        assert_eq!(t.num_npus(), 4);
        assert_eq!(t.num_links(), 8); // bidirectional 4-ring
        assert!(t.has_link(NpuId::new(0), NpuId::new(1)));
        assert!(t.has_link(NpuId::new(1), NpuId::new(0)));
        assert!(t.has_link(NpuId::new(3), NpuId::new(0)));
        assert!(!t.has_link(NpuId::new(0), NpuId::new(2)));
    }

    #[test]
    fn two_member_ring_is_single_bidi() {
        let t = multi_dim("r2", &[Dim::new(DimKind::Ring, 2, spec(50.0))]).unwrap();
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    fn fc_dim_wiring() {
        let t = multi_dim("fc4", &[Dim::new(DimKind::FullyConnected, 4, spec(50.0))]).unwrap();
        assert_eq!(t.num_links(), 12);
        assert!(t.has_link(NpuId::new(0), NpuId::new(3)));
    }

    #[test]
    fn switch_dim_unwinding_degree_divides_bandwidth() {
        let t = multi_dim(
            "sw4",
            &[Dim::new(DimKind::Switch { degree: 2 }, 4, spec(120.0))],
        )
        .unwrap();
        assert_eq!(t.num_links(), 8); // 4 NPUs x degree 2
        let link = t
            .best_link_between(NpuId::new(0), NpuId::new(1), crate::units::ByteSize::ZERO)
            .unwrap();
        assert_eq!(link.spec().bandwidth().as_gbps(), 60.0);
        assert!(t.has_link(NpuId::new(0), NpuId::new(2)));
        assert!(!t.has_link(NpuId::new(0), NpuId::new(3)));
    }

    #[test]
    fn mesh_dim_has_no_wraparound() {
        let t = multi_dim("m4", &[Dim::new(DimKind::Mesh, 4, spec(50.0))]).unwrap();
        assert_eq!(t.num_links(), 6);
        assert!(!t.has_link(NpuId::new(3), NpuId::new(0)));
    }

    #[test]
    fn rfs_3d_shape() {
        // Paper Table V: 2x4x8 = 64 NPUs per 8-node config... (2x4 node, 8 switch).
        let t = Topology::rfs_3d(2, 4, 8, Time::from_micros(0.5), [200.0, 100.0, 50.0]).unwrap();
        assert_eq!(t.num_npus(), 64);
        assert!(t.is_strongly_connected());
        assert_eq!(t.dims().len(), 3);
        assert!(!t.is_homogeneous());
        // Coordinates roundtrip.
        for npu in t.npus() {
            let c = t.coords(npu);
            assert_eq!(t.npu_at(&c), npu);
        }
    }

    #[test]
    fn switch_2d_shape() {
        // Paper §VI-B.1: 2D Switch (8x4) with [300, 25] GB/s.
        let t = Topology::switch_2d(8, 4, Time::from_micros(0.5), [300.0, 25.0]).unwrap();
        assert_eq!(t.num_npus(), 32);
        assert!(t.is_strongly_connected());
        // Dimension-0 switch unwound degree 1: NPU0 -> NPU1 at 300 GB/s.
        let l = t
            .best_link_between(NpuId::new(0), NpuId::new(1), crate::units::ByteSize::ZERO)
            .unwrap();
        assert_eq!(l.spec().bandwidth().as_gbps(), 300.0);
        // Dimension-1 switch: NPU0 -> NPU8 at 25 GB/s.
        let l = t
            .best_link_between(NpuId::new(0), NpuId::new(8), crate::units::ByteSize::ZERO)
            .unwrap();
        assert_eq!(l.spec().bandwidth().as_gbps(), 25.0);
    }

    #[test]
    fn empty_dims_rejected() {
        assert!(matches!(
            multi_dim("none", &[]),
            Err(TopologyError::BadDimensions { .. })
        ));
    }

    #[test]
    fn coords_mixed_radix_order() {
        let t = multi_dim(
            "grid",
            &[
                Dim::new(DimKind::Ring, 2, spec(50.0)),
                Dim::new(DimKind::Ring, 3, spec(50.0)),
            ],
        )
        .unwrap();
        // Dimension 0 varies fastest: NPU index 5 = (1, 2).
        assert_eq!(t.coords(NpuId::new(5)), vec![1, 2]);
        assert_eq!(t.npu_at(&[1, 2]), NpuId::new(5));
    }
}
