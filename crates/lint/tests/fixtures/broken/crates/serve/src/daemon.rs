//! Broken fixture for the panic-path audit: a bare unwrap, an indexing
//! site with a malformed suppression, and (negative case) an unwrap
//! inside test code that must NOT be flagged.

pub fn handle(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn index(xs: &[u32]) -> u32 {
    xs[0] // lint: allow(panic)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::handle(Some(1)), 1);
    }
}
